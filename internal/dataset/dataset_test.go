package dataset

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSliceGroupBasics(t *testing.T) {
	g := NewSliceGroup("g", []float64{1, 2, 3, 4})
	if g.Name() != "g" || g.Size() != 4 {
		t.Fatalf("name/size wrong: %q %d", g.Name(), g.Size())
	}
	if g.TrueMean() != 2.5 {
		t.Fatalf("mean %v", g.TrueMean())
	}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		v := g.Draw(r)
		if v < 1 || v > 4 {
			t.Fatalf("draw %v outside values", v)
		}
	}
}

func TestSliceGroupEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty group should panic")
		}
	}()
	NewSliceGroup("e", nil)
}

func TestWithoutReplacementIsPermutation(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70}
	g := NewSliceGroup("g", vals)
	r := xrand.New(2)
	var drawn []float64
	for {
		v, ok := g.DrawWithoutReplacement(r)
		if !ok {
			break
		}
		drawn = append(drawn, v)
	}
	if len(drawn) != len(vals) {
		t.Fatalf("drew %d of %d values", len(drawn), len(vals))
	}
	sort.Float64s(drawn)
	for i, v := range vals {
		if drawn[i] != v {
			t.Fatalf("multiset mismatch at %d: %v", i, drawn)
		}
	}
	// Exhausted: further draws report false.
	if _, ok := g.DrawWithoutReplacement(r); ok {
		t.Fatal("exhausted group still drawing")
	}
	// Reset gives a fresh pass.
	g.ResetDraws()
	if _, ok := g.DrawWithoutReplacement(r); !ok {
		t.Fatal("reset group not drawing")
	}
}

func TestWithoutReplacementMeanExact(t *testing.T) {
	// Consuming the full permutation reproduces the exact mean, for any
	// contents — the property exhaustion-settling in IFOCUS relies on.
	r := xrand.New(3)
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, b := range raw {
			vals[i] = float64(b)
		}
		g := NewSliceGroup("g", vals)
		sum := 0.0
		n := 0
		for {
			v, ok := g.DrawWithoutReplacement(r)
			if !ok {
				break
			}
			sum += v
			n++
		}
		return n == len(vals) && math.Abs(sum/float64(n)-g.TrueMean()) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	g := NewSliceGroup("g", []float64{1, 2, 3})
	sum := 0.0
	n := g.Scan(func(v float64) { sum += v })
	if n != 3 || sum != 6 {
		t.Fatalf("scan n=%d sum=%v", n, sum)
	}
}

func TestDistGroup(t *testing.T) {
	g := NewDistGroup("d", xrand.Point(5), 1000)
	if g.TrueMean() != 5 || g.Size() != 1000 {
		t.Fatalf("dist group basics wrong")
	}
	if v := g.Draw(xrand.New(1)); v != 5 {
		t.Fatalf("draw %v", v)
	}
}

func TestDistGroupPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDistGroup("d", xrand.Point(5), 0)
}

func TestUniverse(t *testing.T) {
	u := NewUniverse(100,
		NewSliceGroup("a", []float64{1, 2}),
		NewSliceGroup("b", []float64{3, 4, 5}),
	)
	if u.K() != 2 || u.TotalSize() != 5 || u.MaxSize() != 3 {
		t.Fatalf("universe shape wrong: k=%d total=%d max=%d", u.K(), u.TotalSize(), u.MaxSize())
	}
	means := u.TrueMeans()
	if means[0] != 1.5 || means[1] != 4 {
		t.Fatalf("means %v", means)
	}
}

func TestUniverseUnknownSize(t *testing.T) {
	// A func-like group with unknown size makes TotalSize 0.
	u := NewUniverse(1, unknownGroup{})
	if u.TotalSize() != 0 {
		t.Fatal("unknown sizes should yield 0 total")
	}
}

type unknownGroup struct{}

func (unknownGroup) Name() string            { return "u" }
func (unknownGroup) Size() int64             { return 0 }
func (unknownGroup) Draw(*xrand.RNG) float64 { return 0.5 }
func (unknownGroup) TrueMean() float64       { return 0.5 }

func TestEtas(t *testing.T) {
	means := []float64{10, 12, 20}
	etas := Etas(means)
	want := []float64{2, 2, 8}
	for i := range want {
		if etas[i] != want[i] {
			t.Fatalf("etas %v, want %v", etas, want)
		}
	}
	if MinEta(means) != 2 {
		t.Fatalf("min eta %v", MinEta(means))
	}
}

func TestEtasBruteForce(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		means := make([]float64, len(raw))
		for i, b := range raw {
			means[i] = float64(b)
		}
		etas := Etas(means)
		for i := range means {
			want := math.Inf(1)
			for j := range means {
				if i != j {
					want = math.Min(want, math.Abs(means[i]-means[j]))
				}
			}
			if etas[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerAccounting(t *testing.T) {
	u := NewUniverse(10,
		NewSliceGroup("a", []float64{1, 1, 1}),
		NewSliceGroup("b", []float64{2, 2}),
	)
	s := NewSampler(u, xrand.New(4), false)
	for i := 0; i < 5; i++ {
		s.Draw(0)
	}
	s.Draw(1)
	if s.Count(0) != 5 || s.Count(1) != 1 || s.Total() != 6 {
		t.Fatalf("counts %v total %d", s.Counts(), s.Total())
	}
}

func TestSamplerWithoutReplacementExhaustion(t *testing.T) {
	u := NewUniverse(10, NewSliceGroup("a", []float64{1, 2}))
	s := NewSampler(u, xrand.New(5), true)
	s.Draw(0)
	s.Draw(0)
	if s.Exhausted(0) {
		t.Fatal("exhausted too early")
	}
	s.Draw(0) // falls back to with-replacement
	if !s.Exhausted(0) {
		t.Fatal("exhaustion not recorded")
	}
}

func TestSamplerModes(t *testing.T) {
	u := NewUniverse(10, NewSliceGroup("a", []float64{1}))
	if !NewSampler(u, xrand.New(1), true).WithoutReplacement() {
		t.Fatal("mode flag lost")
	}
	if NewSampler(u, xrand.New(1), false).WithoutReplacement() {
		t.Fatal("mode flag wrong")
	}
}

func TestPairGroups(t *testing.T) {
	g := NewSlicePairGroup("p", []float64{1, 2, 3}, []float64{10, 20, 30})
	if g.TrueMean() != 2 || g.TrueMeanZ() != 20 {
		t.Fatalf("pair means %v %v", g.TrueMean(), g.TrueMeanZ())
	}
	r := xrand.New(6)
	y, z := g.DrawPair(r)
	if z != y*10 {
		t.Fatalf("pair draw not aligned: y=%v z=%v", y, z)
	}

	dg := NewDistPairGroup("dp", xrand.Point(1), xrand.Point(2), 100)
	if dg.TrueMeanZ() != 2 {
		t.Fatalf("dist pair z mean %v", dg.TrueMeanZ())
	}
	y, z = dg.DrawPair(r)
	if y != 1 || z != 2 {
		t.Fatalf("dist pair draw %v %v", y, z)
	}
}

func TestSlicePairGroupMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched slices")
		}
	}()
	NewSlicePairGroup("p", []float64{1}, []float64{1, 2})
}

func TestMembershipFractionEstimatorUnbiased(t *testing.T) {
	u := NewUniverse(10,
		NewSliceGroup("a", make([]float64, 300)),
		NewSliceGroup("b", make([]float64, 700)),
	)
	est := NewMembershipFractionEstimator(u)
	r := xrand.New(7)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += est.DrawFractionEstimate(1, r)
	}
	if frac := sum / n; math.Abs(frac-0.7) > 0.01 {
		t.Fatalf("estimated fraction %v, want 0.7", frac)
	}
}
