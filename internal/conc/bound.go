package conc

import (
	"fmt"
	"math"
)

// This file makes the concentration inequality pluggable. Every sampling
// algorithm in the repository only needs *some* valid anytime per-group
// confidence radius — the ordering guarantees, stopping rules, and mistake
// bounds are all proved against "an interval that contains the true mean
// with probability 1−δ/K at every round simultaneously", never against the
// Hoeffding form specifically. Bound abstracts that contract so the
// Hoeffding/Serfling schedule (the paper's choice, and the default),
// a variance-adaptive empirical-Bernstein bound, and its finite-population
// variant can be swapped per run.
//
// The Bernstein bounds consume per-group sufficient statistics (count,
// mean, M2) maintained incrementally by the sampler accounting layer —
// Welford updates folded in as draws happen, never a rescan of past draws —
// which is exactly the single-pass, close-to-the-data discipline the
// memory-bottleneck argument of the PIM line of work prescribes.

// Kind names a Bound implementation. The zero value selects the default
// Hoeffding/Serfling schedule.
type Kind string

// Kind values.
const (
	// KindHoeffding is the paper's anytime Hoeffding/Hoeffding–Serfling
	// schedule (Algorithm 1, Line 6): variance-oblivious, bit-for-bit the
	// behavior of every release before bounds became pluggable.
	KindHoeffding Kind = "hoeffding"
	// KindBernstein is the anytime empirical-Bernstein bound: its radius
	// scales with the *observed* per-group standard deviation instead of
	// the domain width C, so low-spread groups separate with far fewer
	// samples. Population sizes are ignored (with-replacement analysis);
	// a fully consumed group still reports radius zero.
	KindBernstein Kind = "bernstein"
	// KindBernsteinFinite is KindBernstein with a Serfling-style
	// finite-population correction on the variance term: as a group's
	// sample approaches its population the radius collapses, the same way
	// the Hoeffding–Serfling schedule's correction behaves.
	KindBernsteinFinite Kind = "bernstein-finite"
)

// ParseKind normalizes a user-facing bound name. The empty string selects
// the default Hoeffding schedule.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindHoeffding:
		return KindHoeffding, nil
	case KindBernstein:
		return KindBernstein, nil
	case KindBernsteinFinite:
		return KindBernsteinFinite, nil
	}
	return "", fmt.Errorf("conc: unknown bound %q (want %s, %s, or %s)",
		s, KindHoeffding, KindBernstein, KindBernsteinFinite)
}

// Moments is an incrementally maintained Welford accumulator: the
// sufficient statistics (count, mean, sum of squared deviations) behind
// the variance-adaptive bounds. One Moments per group lives in the sampler
// accounting layer and is folded forward as draws happen; it is never
// rebuilt by rescanning past draws. Like a group's RNG stream, it is
// group-owned state: at most one goroutine may update a given group's
// Moments at a time (the parallel round driver's per-group discipline).
type Moments struct {
	// N is the number of observed values.
	N int64
	// Mean is the running mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add folds one value into the moments.
func (mo *Moments) Add(x float64) {
	mo.N++
	d := x - mo.Mean
	mo.Mean += d / float64(mo.N)
	mo.M2 += d * (x - mo.Mean)
}

// AddAll folds a block of values in one call.
func (mo *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		mo.Add(x)
	}
}

// Variance returns the empirical (1/N) variance — the convention of the
// empirical-Bernstein inequality of Audibert, Munos & Szepesvári. Zero
// before two values have been observed.
func (mo *Moments) Variance() float64 {
	if mo.N < 2 {
		return 0
	}
	v := mo.M2 / float64(mo.N)
	if v < 0 {
		return 0 // floating-point guard; M2 is non-negative analytically
	}
	return v
}

// Reset clears the accumulator.
func (mo *Moments) Reset() { *mo = Moments{} }

// Bound computes an anytime per-group confidence radius. With probability
// at least 1−Delta/K per group (1−Delta after the union bound over the K
// groups), the group's running sample mean stays within Radius of its true
// mean at every sample count simultaneously — the contract every round
// algorithm's settle logic is proved against.
type Bound interface {
	// Kind identifies the implementation.
	Kind() Kind
	// NeedsMoments reports whether Radius consumes per-group moments.
	// Variance-oblivious bounds return false and tolerate a nil Moments,
	// letting callers skip the accounting entirely.
	NeedsMoments() bool
	// Radius returns the confidence half-width for a group holding m
	// samples drawn from a population of size n (n == 0 means sampling
	// with replacement / unknown size: finite-population corrections are
	// dropped). mom carries the group's incrementally maintained moments;
	// it may be nil when NeedsMoments is false.
	Radius(m int, n int64, mom *Moments) float64
}

// NewBound builds the Bound implementation named by kind over the value
// domain [0, c] with k groups, failure probability delta, and geometric
// round spacing kappa (the same κ the Hoeffding schedule uses).
func NewBound(kind Kind, c float64, k int, delta, kappa float64) (Bound, error) {
	kind, err := ParseKind(string(kind))
	if err != nil {
		return nil, err
	}
	s, err := NewSchedule(c, k, delta, kappa, 0)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindBernstein:
		return &bernsteinBound{s: s}, nil
	case KindBernsteinFinite:
		return &bernsteinBound{s: s, finite: true}, nil
	}
	return &hoeffdingBound{s: s}, nil
}

// MustBound is NewBound but panics on invalid parameters; for internal
// callers whose parameters are validated upstream.
func MustBound(kind Kind, c float64, k int, delta, kappa float64) Bound {
	b, err := NewBound(kind, c, k, delta, kappa)
	if err != nil {
		panic(err)
	}
	return b
}

// hoeffdingBound adapts the anytime Hoeffding/Serfling Schedule to the
// Bound interface. Radius is exactly Schedule.EpsilonN, so runs routed
// through it match the shared-schedule code path bit for bit.
type hoeffdingBound struct {
	s *Schedule
}

func (b *hoeffdingBound) Kind() Kind         { return KindHoeffding }
func (b *hoeffdingBound) NeedsMoments() bool { return false }

func (b *hoeffdingBound) Radius(m int, n int64, _ *Moments) float64 {
	return b.s.EpsilonN(m, n)
}

// ln3 is the empirical-Bernstein constant: the inequality of Audibert,
// Munos & Szepesvári (2009) holds with probability 1−δ at radius
// sqrt(2·V̂·ln(3/δ)/m) + 3·C·ln(3/δ)/m, the 3 covering its two internal
// deviation events plus the variance estimate.
var ln3 = math.Log(3)

// bernsteinBound is the anytime empirical-Bernstein bound. It reuses the
// Hoeffding schedule's iterated-logarithm union machinery: allocating the
// per-group budget δ/K across geometrically spaced sample counts exactly
// as Schedule does yields the per-count budget
//
//	δ_m = 3δ / (π²·K·log_κ(m)²)
//
// so ln(3/δ_m) = 2·loglog_κ(m) + ln(π²K/(3δ)) + ln 3 — the schedule's
// cached logTerm plus the Bernstein constant. The radius is then
//
//	ε_m = sqrt(2·V̂_m·f·L_m / (m/κ)) + 3·C·L_m / (m/κ)
//
// with V̂_m the group's empirical variance and f the optional Serfling
// finite-population factor (finite variant only). The first term shrinks
// with the observed spread — the whole point — while the second, the
// price of not knowing the variance a priori, decays at 1/m and is soon
// negligible. The radius is clamped to C: values live in [0, C], so the
// true mean is always within C of any estimate.
type bernsteinBound struct {
	s      *Schedule
	finite bool
}

func (b *bernsteinBound) Kind() Kind {
	if b.finite {
		return KindBernsteinFinite
	}
	return KindBernstein
}

func (b *bernsteinBound) NeedsMoments() bool { return true }

func (b *bernsteinBound) Radius(m int, n int64, mom *Moments) float64 {
	if m < 2 || mom == nil || mom.N < 2 {
		return b.s.C // not enough information to estimate the spread
	}
	if n > 0 && int64(m) >= n {
		return 0 // the whole population is consumed; the mean is exact
	}
	mf := float64(m)
	mk := mf
	if b.s.Kappa > 1 {
		mk = mf / b.s.Kappa
	}
	l := 2*loglog(mf, b.s.Kappa) + b.s.logTerm + ln3
	f := 1.0
	if b.finite && n > 0 {
		f = 1 - (mf-1)/float64(n)
		if f < 0 {
			f = 0
		}
	}
	r := math.Sqrt(2*mom.Variance()*f*l/mk) + 3*b.s.C*l/mk
	if r > b.s.C {
		r = b.s.C
	}
	return r
}

// EBRadius is the fixed-confidence (non-anytime) empirical-Bernstein
// radius: with probability at least 1−delta, the mean of m samples in
// [0, c] with empirical variance v is within
//
//	ε = sqrt(2·v·ln(3/δ)/m) + 3·c·ln(3/δ)/m
//
// of the true mean (Audibert–Munos–Szepesvári). It is the Bernstein
// counterpart of HoeffdingRadius, used by IREFINE's variance-adaptive
// re-estimation.
func EBRadius(c float64, m int, v, delta float64) float64 {
	if m < 2 {
		return c
	}
	l := math.Log(3 / delta)
	r := math.Sqrt(2*v*l/float64(m)) + 3*c*l/float64(m)
	if r > c {
		r = c
	}
	return r
}
