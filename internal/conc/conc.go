// Package conc implements the concentration inequalities that drive every
// sampling algorithm in this repository: the classical Hoeffding bound, the
// Hoeffding–Serfling bound for sampling without replacement, and — most
// importantly — the anytime confidence-interval schedule of IFOCUS
// (Algorithm 1, Line 6 of the paper), which unions Hoeffding–Serfling over
// geometrically spaced rounds in the style of the law of the iterated
// logarithm so the interval is simultaneously valid at *every* round.
package conc

import (
	"fmt"
	"math"
)

// Schedule computes the anytime confidence-interval half-width ε_m used by
// IFOCUS and ROUNDROBIN. With probability at least 1-Delta/K (per group;
// 1-Delta after the union bound across the K groups), the running sample
// mean of a group stays within ε_m of the true mean at every round m
// simultaneously.
//
// The zero value is not usable; construct with NewSchedule.
type Schedule struct {
	// C is the width of the value domain: every sampled value lies in [0, C].
	C float64
	// K is the number of groups; the per-group failure budget is Delta/K.
	K int
	// Delta is the overall failure probability.
	Delta float64
	// Kappa is the geometric spacing of the union bound (κ in the paper).
	// Kappa == 1 selects the paper's experimental configuration, where the
	// iterated-logarithm term uses the natural log (paper footnote †).
	Kappa float64
	// N is the population size used by the Hoeffding–Serfling
	// finite-population correction (max_{i∈A} n_i in Algorithm 1).
	// N == 0 means sampling with replacement: the correction term is
	// dropped, exactly as §3.6 of the paper prescribes.
	N int64

	logTerm float64 // cached log(π²K/(3δ))
}

// NewSchedule validates the parameters and returns a Schedule.
func NewSchedule(c float64, k int, delta, kappa float64, n int64) (*Schedule, error) {
	switch {
	case c <= 0:
		return nil, fmt.Errorf("conc: domain width c must be positive, got %v", c)
	case k <= 0:
		return nil, fmt.Errorf("conc: group count k must be positive, got %d", k)
	case delta <= 0 || delta >= 1:
		return nil, fmt.Errorf("conc: delta must be in (0,1), got %v", delta)
	case kappa < 1:
		return nil, fmt.Errorf("conc: kappa must be >= 1, got %v", kappa)
	case n < 0:
		return nil, fmt.Errorf("conc: population size must be non-negative, got %d", n)
	}
	s := &Schedule{C: c, K: k, Delta: delta, Kappa: kappa, N: n}
	s.logTerm = math.Log(math.Pi * math.Pi * float64(k) / (3 * delta))
	return s, nil
}

// MustSchedule is NewSchedule but panics on invalid parameters. It is used
// by internal callers whose parameters are validated upstream.
func MustSchedule(c float64, k int, delta, kappa float64, n int64) *Schedule {
	s, err := NewSchedule(c, k, delta, kappa, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Epsilon returns the confidence-interval half-width after m samples per
// active group:
//
//	ε_m = C · sqrt( (1 − (m/κ − 1)/N) · (2·loglog_κ(m) + log(π²K/(3δ))) / (2m/κ) )
//
// The finite-population factor is clamped to [0, 1] and dropped entirely
// when N == 0 (with-replacement mode). The iterated logarithm is clamped at
// zero: log log m is negative or undefined for small m, and clamping only
// widens the interval, which preserves the correctness guarantee.
func (s *Schedule) Epsilon(m int) float64 {
	return s.EpsilonN(m, s.N)
}

// EpsilonN is Epsilon with an explicit population size n, allowing callers
// to track the shrinking max_{i∈A} n_i of Algorithm 1 as groups deactivate.
// n == 0 drops the finite-population correction.
func (s *Schedule) EpsilonN(m int, n int64) float64 {
	if m < 1 {
		return s.C // no information yet; the whole domain
	}
	mf := float64(m)
	mk := mf // m/κ with the paper's κ=1 convention
	if s.Kappa > 1 {
		mk = mf / s.Kappa
	}
	ll := loglog(mf, s.Kappa)
	num := 2*ll + s.logTerm
	finite := 1.0
	if n > 0 {
		finite = 1 - (mk-1)/float64(n)
		if finite < 0 {
			finite = 0
		}
		if finite > 1 {
			finite = 1
		}
	}
	eps := s.C * math.Sqrt(finite*num/(2*mk))
	return eps
}

// SampleBound returns a conservative upper bound on the number of rounds
// needed to drive ε_m below target (the m* of Lemma 3 with target = η/4).
// It returns the smallest power-of-two-stepped m found by doubling then
// binary search; the exact minimal m is not needed by callers.
func (s *Schedule) SampleBound(target float64) int {
	if target <= 0 {
		return math.MaxInt32
	}
	lo, hi := 1, 1
	for s.Epsilon(hi) >= target {
		if hi > 1<<40 {
			return hi
		}
		lo = hi
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.Epsilon(mid) < target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// loglog computes the clamped iterated logarithm term loglog_κ(m). With
// κ == 1 the outer log base degenerates, so the paper's footnote prescribes
// the natural logarithm instead.
func loglog(m, kappa float64) float64 {
	if m < math.E {
		return 0
	}
	inner := math.Log(m) // ln m, i.e. log_κ(m) for the κ=1 convention
	if kappa > 1 {
		inner /= math.Log(kappa) // log_κ(m)
	}
	outer := math.Log(inner)
	if outer < 0 {
		return 0
	}
	return outer
}

// HoeffdingRadius returns the two-sided Hoeffding confidence half-width for
// the mean of m i.i.d. samples in [0, c] at confidence 1-delta:
//
//	ε = c · sqrt( ln(2/δ) / (2m) )
func HoeffdingRadius(c float64, m int, delta float64) float64 {
	if m <= 0 {
		return c
	}
	return c * math.Sqrt(math.Log(2/delta)/(2*float64(m)))
}

// HoeffdingSampleSize returns the number of i.i.d. samples in [0, c]
// sufficient for the sample mean to be within ±eps of the true mean with
// probability at least 1-delta (Lemma 4 / Algorithm 2 of the paper):
//
//	m = ceil( c² / (2ε²) · ln(2/δ) )
func HoeffdingSampleSize(c, eps, delta float64) int {
	if eps <= 0 {
		return math.MaxInt32
	}
	m := c * c / (2 * eps * eps) * math.Log(2/delta)
	n := int(math.Ceil(m))
	if n < 1 {
		n = 1
	}
	return n
}

// SerflingRadius returns the Hoeffding–Serfling confidence half-width for
// the running mean of m samples drawn without replacement from a population
// of size n with values in [0, c], valid for all rounds up to m with
// probability 1-delta:
//
//	ε = c · sqrt( (1 − (m−1)/n) · ln(2/δ) / (2m) )
//
// The (1−(m−1)/n) factor is the finite-population correction of Serfling
// (1974); as m → n the radius collapses to zero because the remaining
// uncertainty vanishes.
func SerflingRadius(c float64, m int, n int64, delta float64) float64 {
	if m <= 0 {
		return c
	}
	if n > 0 && int64(m) >= n {
		return 0
	}
	finite := 1.0
	if n > 0 {
		finite = 1 - float64(m-1)/float64(n)
		if finite < 0 {
			finite = 0
		}
	}
	return c * math.Sqrt(finite*math.Log(2/delta)/(2*float64(m)))
}

// TheoreticalSampleComplexity evaluates the IFOCUS sample-complexity bound
// of Theorem 3.6 for a single group with minimal mean gap eta:
//
//	m*_i = O( c² · (log(k/δ) + loglog(1/η)) / η² )
//
// It is exposed for the difficulty analyses behind Figures 6(c) and 7(c).
func TheoreticalSampleComplexity(c, eta float64, k int, delta float64) float64 {
	if eta <= 0 {
		return math.Inf(1)
	}
	ll := math.Log(math.Max(math.Log(1/eta), 1))
	if ll < 0 {
		ll = 0
	}
	return c * c * (math.Log(float64(k)/delta) + ll) / (eta * eta)
}

// Difficulty returns the paper's difficulty proxy c²/η² used on the y-axes
// of Figures 6(c) and 7(c).
func Difficulty(c, eta float64) float64 {
	if eta <= 0 {
		return math.Inf(1)
	}
	return c * c / (eta * eta)
}
