package conc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewScheduleValidation(t *testing.T) {
	cases := []struct {
		c     float64
		k     int
		delta float64
		kappa float64
		n     int64
	}{
		{0, 10, 0.05, 1, 0},
		{-1, 10, 0.05, 1, 0},
		{1, 0, 0.05, 1, 0},
		{1, 10, 0, 1, 0},
		{1, 10, 1, 1, 0},
		{1, 10, 0.05, 0.5, 0},
		{1, 10, 0.05, 1, -1},
	}
	for i, c := range cases {
		if _, err := NewSchedule(c.c, c.k, c.delta, c.kappa, c.n); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewSchedule(100, 10, 0.05, 1, 1e6); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestEpsilonDecreasesInM(t *testing.T) {
	s := MustSchedule(100, 10, 0.05, 1, 0)
	prev := math.Inf(1)
	for m := 1; m < 100_000; m = m*3/2 + 1 {
		eps := s.Epsilon(m)
		if eps > prev {
			t.Fatalf("epsilon increased at m=%d: %v > %v", m, eps, prev)
		}
		prev = eps
	}
}

func TestEpsilonScalesWithC(t *testing.T) {
	s1 := MustSchedule(1, 10, 0.05, 1, 0)
	s100 := MustSchedule(100, 10, 0.05, 1, 0)
	for _, m := range []int{1, 10, 1000, 100_000} {
		r := s100.Epsilon(m) / s1.Epsilon(m)
		if math.Abs(r-100) > 1e-9 {
			t.Fatalf("epsilon not linear in c at m=%d: ratio %v", m, r)
		}
	}
}

func TestEpsilonFinitePopulation(t *testing.T) {
	with := MustSchedule(100, 10, 0.05, 1, 0)
	without := MustSchedule(100, 10, 0.05, 1, 1000)
	for _, m := range []int{2, 10, 100, 500} {
		if without.Epsilon(m) > with.Epsilon(m)+1e-12 {
			t.Fatalf("finite-population epsilon exceeds infinite at m=%d", m)
		}
	}
	// At m beyond the population the interval collapses to zero.
	if eps := without.Epsilon(1002); eps != 0 {
		t.Fatalf("epsilon %v should be 0 past exhaustion", eps)
	}
}

func TestEpsilonNOverride(t *testing.T) {
	s := MustSchedule(100, 10, 0.05, 1, 1_000_000)
	if a, b := s.Epsilon(100), s.EpsilonN(100, 1_000_000); a != b {
		t.Fatalf("EpsilonN(s.N) %v != Epsilon %v", b, a)
	}
	// Smaller population → smaller epsilon at the same m.
	if s.EpsilonN(500, 1000) >= s.EpsilonN(500, 1_000_000) {
		t.Fatal("smaller population should shrink epsilon")
	}
}

func TestEpsilonKappaCloseToOne(t *testing.T) {
	// The paper's footnote: kappa=1.01 behaves nearly identically to
	// kappa=1 (with natural log) in the regimes that matter.
	k1 := MustSchedule(100, 10, 0.05, 1, 0)
	k101 := MustSchedule(100, 10, 0.05, 1.01, 0)
	for _, m := range []int{100, 10_000, 1_000_000} {
		a, b := k1.Epsilon(m), k101.Epsilon(m)
		if b < a {
			t.Fatalf("kappa=1.01 must be at least as conservative as kappa=1 at m=%d: %v < %v", m, b, a)
		}
		if b/a > 1.6 {
			t.Fatalf("kappa=1 vs 1.01 diverge at m=%d: %v vs %v", m, a, b)
		}
	}
}

func TestEpsilonDelta(t *testing.T) {
	loose := MustSchedule(100, 10, 0.5, 1, 0)
	tight := MustSchedule(100, 10, 0.01, 1, 0)
	for _, m := range []int{2, 100, 10_000} {
		if tight.Epsilon(m) <= loose.Epsilon(m) {
			t.Fatalf("smaller delta must widen intervals at m=%d", m)
		}
	}
}

func TestSampleBound(t *testing.T) {
	s := MustSchedule(100, 10, 0.05, 1, 0)
	for _, target := range []float64{10, 1, 0.25} {
		m := s.SampleBound(target)
		if s.Epsilon(m) >= target {
			t.Fatalf("Epsilon(SampleBound(%v)=%d) = %v not below target", target, m, s.Epsilon(m))
		}
		if m > 1 && s.Epsilon(m-1) < target {
			t.Fatalf("SampleBound(%v)=%d not minimal", target, m)
		}
	}
}

func TestHoeffdingInverse(t *testing.T) {
	// HoeffdingSampleSize must return an m whose radius is at most eps.
	check := func(rawC, rawEps uint16, rawDelta uint8) bool {
		c := 1 + float64(rawC%1000)
		eps := c * (0.001 + float64(rawEps%500)/1000)
		delta := 0.001 + float64(rawDelta)/300
		m := HoeffdingSampleSize(c, eps, delta)
		return HoeffdingRadius(c, m, delta) <= eps*(1+1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHoeffdingRadiusEdge(t *testing.T) {
	if r := HoeffdingRadius(100, 0, 0.05); r != 100 {
		t.Fatalf("zero samples should give the domain width, got %v", r)
	}
	if m := HoeffdingSampleSize(100, 0, 0.05); m != math.MaxInt32 {
		t.Fatalf("zero eps should demand unbounded samples, got %d", m)
	}
}

func TestSerflingRadius(t *testing.T) {
	// Serfling tightens Hoeffding and collapses at exhaustion.
	c, delta := 100.0, 0.05
	var n int64 = 1000
	for m := 1; m < 1000; m += 97 {
		s := SerflingRadius(c, m, n, delta)
		h := HoeffdingRadius(c, m, delta)
		if s > h+1e-12 {
			t.Fatalf("Serfling %v exceeds Hoeffding %v at m=%d", s, h, m)
		}
	}
	if r := SerflingRadius(c, 1000, n, delta); r != 0 {
		t.Fatalf("radius at exhaustion should be 0, got %v", r)
	}
}

// TestAnytimeCoverage is the statistical heart of the package: the ε_m
// schedule must contain the true mean at *every* round simultaneously with
// probability at least 1−δ/k. We run many independent without-replacement
// sample paths over a worst-case-ish two-point population and count paths
// that ever escape the envelope.
func TestAnytimeCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		k     = 1 // single group: budget is delta itself
		n     = 2000
		paths = 400
	)
	delta := 0.1
	s := MustSchedule(1, k, delta, 1, n)
	// Two-point population with mean 0.5: maximal variance for c=1.
	pop := make([]float64, n)
	for i := range pop {
		if i%2 == 0 {
			pop[i] = 1
		}
	}
	mu := 0.5
	violations := 0
	for p := 0; p < paths; p++ {
		r := xrand.New(uint64(1000 + p))
		perm := r.Perm(n)
		sum := 0.0
		bad := false
		for m := 1; m <= n; m++ {
			sum += pop[perm[m-1]]
			est := sum / float64(m)
			if math.Abs(est-mu) > s.Epsilon(m) {
				bad = true
				break
			}
		}
		if bad {
			violations++
		}
	}
	// Allow generous slack over delta*paths: the bound is conservative so
	// violations should in practice be near zero.
	if float64(violations) > delta*float64(paths) {
		t.Fatalf("%d/%d paths escaped the envelope (budget %v)", violations, paths, delta*paths)
	}
}

func TestDifficulty(t *testing.T) {
	if d := Difficulty(100, 1); d != 10_000 {
		t.Fatalf("difficulty = %v, want 10000", d)
	}
	if !math.IsInf(Difficulty(100, 0), 1) {
		t.Fatal("zero eta should be infinitely hard")
	}
}

func TestTheoreticalSampleComplexityMonotone(t *testing.T) {
	// Harder instances (smaller eta) need more samples.
	prev := 0.0
	for _, eta := range []float64{10, 1, 0.1, 0.01} {
		v := TheoreticalSampleComplexity(100, eta, 10, 0.05)
		if v <= prev {
			t.Fatalf("complexity not increasing as eta shrinks: %v after %v", v, prev)
		}
		prev = v
	}
}
