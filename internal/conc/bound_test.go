package conc

import (
	"math"
	"testing"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", KindHoeffding, true},
		{"hoeffding", KindHoeffding, true},
		{"bernstein", KindBernstein, true},
		{"bernstein-finite", KindBernsteinFinite, true},
		{"chernoff", "", false},
		{"Bernstein", "", false},
	}
	for _, tc := range cases {
		got, err := ParseKind(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseKind(%q) accepted", tc.in)
		}
	}
}

func TestMomentsWelford(t *testing.T) {
	var mo Moments
	xs := []float64{3, 7, 7, 19, 24, 1, 12}
	mo.AddAll(xs)
	mean, sq := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	wantVar := sq / float64(len(xs))
	if math.Abs(mo.Mean-mean) > 1e-12 {
		t.Fatalf("mean %v, want %v", mo.Mean, mean)
	}
	if math.Abs(mo.Variance()-wantVar) > 1e-9 {
		t.Fatalf("variance %v, want %v", mo.Variance(), wantVar)
	}
	mo.Reset()
	if mo.N != 0 || mo.Variance() != 0 {
		t.Fatalf("reset left state: %+v", mo)
	}
}

// TestRadiusMonotoneInM: every bound's radius is non-increasing in the
// sample count (at fixed observed variance) — the property the settle
// logic relies on when it treats "interval separated" as permanent.
func TestRadiusMonotoneInM(t *testing.T) {
	const c = 100.0
	for _, kind := range []Kind{KindHoeffding, KindBernstein, KindBernsteinFinite} {
		b := MustBound(kind, c, 8, 0.05, 1)
		prev := math.Inf(1)
		for m := 2; m <= 1<<20; m = m*5/4 + 1 {
			mom := &Moments{N: int64(m), M2: 9 * float64(m)} // variance 9
			r := b.Radius(m, 0, mom)
			if r > prev+1e-12 {
				t.Fatalf("%s: radius rose at m=%d: %v -> %v", kind, m, prev, r)
			}
			if r < 0 {
				t.Fatalf("%s: negative radius %v at m=%d", kind, r, m)
			}
			prev = r
		}
	}
}

// TestBernsteinBeatsHoeffdingLowVariance: once the observed variance is
// far below (C/2)² — the implicit variance the Hoeffding bound charges —
// the empirical-Bernstein radius is strictly smaller.
func TestBernsteinBeatsHoeffdingLowVariance(t *testing.T) {
	const c = 100.0
	h := MustBound(KindHoeffding, c, 8, 0.05, 1)
	eb := MustBound(KindBernstein, c, 8, 0.05, 1)
	for _, v := range []float64{0, 1, 25} { // all ≪ (c/2)² = 2500
		for m := 512; m <= 1<<20; m *= 4 {
			mom := &Moments{N: int64(m), M2: v * float64(m)}
			rh := h.Radius(m, 0, nil)
			rb := eb.Radius(m, 0, mom)
			if rb >= rh {
				t.Fatalf("variance %v, m=%d: bernstein %v >= hoeffding %v", v, m, rb, rh)
			}
		}
	}
}

// TestBernsteinFiniteTightens: the finite-population variant never
// exceeds the plain bound, and collapses to zero once the population is
// consumed.
func TestBernsteinFiniteTightens(t *testing.T) {
	const c = 100.0
	eb := MustBound(KindBernstein, c, 4, 0.05, 1)
	fin := MustBound(KindBernsteinFinite, c, 4, 0.05, 1)
	const n = 10_000
	for m := 2; m < n; m = m*2 + 1 {
		mom := &Moments{N: int64(m), M2: 50 * float64(m)}
		rp, rf := eb.Radius(m, 0, mom), fin.Radius(m, n, mom)
		if rf > rp {
			t.Fatalf("m=%d: finite %v > plain %v", m, rf, rp)
		}
	}
	mom := &Moments{N: n, M2: 50 * n}
	if r := fin.Radius(n, n, mom); r != 0 {
		t.Fatalf("exhausted population: radius %v, want 0", r)
	}
	if r := eb.Radius(n, n, mom); r != 0 {
		t.Fatalf("plain bound on exhausted population: radius %v, want 0", r)
	}
}

// TestRadiusEarlyAndClamped: with fewer than two observations every bound
// reports the whole domain, and no radius ever exceeds C.
func TestRadiusEarlyAndClamped(t *testing.T) {
	const c = 100.0
	for _, kind := range []Kind{KindBernstein, KindBernsteinFinite} {
		b := MustBound(kind, c, 4, 0.05, 1)
		if r := b.Radius(1, 0, &Moments{N: 1}); r != c {
			t.Fatalf("%s: m=1 radius %v, want C", kind, r)
		}
		if r := b.Radius(0, 0, nil); r != c {
			t.Fatalf("%s: nil moments radius %v, want C", kind, r)
		}
		// Huge variance at tiny m: the clamp keeps the radius at C.
		if r := b.Radius(3, 0, &Moments{N: 3, M2: 3 * 2500}); r > c {
			t.Fatalf("%s: radius %v above the domain width", kind, r)
		}
	}
}

// TestBoundCoverage is a seeded coverage simulation: across many
// independent runs, the fraction in which the running mean *ever* leaves
// [μ ± Radius(m)] at any checkpoint must stay at or below δ — the anytime
// guarantee every algorithm's settle logic consumes. The bounds are
// conservative, so the observed miscoverage should in fact be near zero.
func TestBoundCoverage(t *testing.T) {
	const (
		c      = 100.0
		delta  = 0.05
		trials = 300
		draws  = 2000
	)
	// A deliberately skewed bounded distribution: most mass at 5, a tail
	// at 95. Mean 5 + 0.1*90 = 14.
	const mean = 14.0
	for _, kind := range []Kind{KindHoeffding, KindBernstein} {
		b := MustBound(kind, c, 1, delta, 1)
		violations := 0
		rng := newTestRNG(0xc0ffee ^ uint64(len(kind)))
		for trial := 0; trial < trials; trial++ {
			var mo Moments
			sum := 0.0
			violated := false
			for m := 1; m <= draws; m++ {
				x := 5.0
				if rng.float64() < 0.1 {
					x = 95.0
				}
				sum += x
				mo.Add(x)
				if math.Abs(sum/float64(m)-mean) > b.Radius(m, 0, &mo) {
					violated = true
					break
				}
			}
			if violated {
				violations++
			}
		}
		if float64(violations) > delta*trials {
			t.Fatalf("%s: %d/%d runs broke the anytime interval (allowed %v)",
				kind, violations, trials, delta*trials)
		}
	}
}

// newTestRNG is a tiny splitmix64 so the conc package's tests need no
// dependency on internal/xrand.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
