// Package colcodec implements the per-block column compression used by the
// v2 segment format (DESIGN.md §14): fixed-size runs of float64 values are
// encoded independently with the cheapest of a small codec set, chosen per
// block at write time by encoded size. Decoding is lossless to the bit —
// every codec must reproduce the exact IEEE-754 bit pattern of every input
// value, because segment-backed draw streams are pinned bit-for-bit against
// their in-memory twins.
//
// Block layout (what EncodeBlock appends and DecodeBlock consumes):
//
//	[0]      codec id (CodecRaw … CodecDict)
//	[1:4)    zero padding
//	[4:8)    value count, uint32 LE
//	[8:12)   payload byte length, uint32 LE
//	[12:16)  CRC-32C (Castagnoli) of the payload, uint32 LE
//	[16:...) payload (codec-specific)
//
// Codecs:
//
//   - Raw: the float64 bit patterns, little-endian. Always applicable; the
//     fallback when nothing else wins.
//   - FOR (frame of reference): applicable when every value in the block is
//     a scaled decimal — v·10^s is an integer m with |m| ≤ 2^53 for some
//     shared scale s ≤ 6 and float64(m)/10^s reproduces v's bits exactly
//     (integer columns are the s = 0 case; datagen's %.4f CSV round trip is
//     s ≤ 4). Payload: scale, bit width, the minimum m as the frame base,
//     then (m−base) bit-packed.
//   - Delta: the same scaled-decimal domain, but consecutive differences
//     are zigzag-encoded and bit-packed — the winner on sorted and
//     near-sorted columns, where deltas are tiny even when the range is
//     wide.
//   - Dict: applicable when the block holds ≤ 256 distinct bit patterns
//     (low-cardinality columns, including non-finite values). Payload: the
//     dictionary in first-appearance order, then bit-packed indices.
//
// DecodeBlock validates the header, the payload checksum, and every
// structural invariant (widths, counts, dictionary bounds) before touching
// the payload, so arbitrarily corrupt input yields a descriptive error,
// never a panic — the property the fuzz targets pin.
package colcodec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
)

// Codec identifies one block encoding.
type Codec uint8

const (
	CodecRaw Codec = iota
	CodecFOR
	CodecDelta
	CodecDict

	numCodecs
)

// Name returns the codec's short name ("raw", "for", "delta", "dict").
func (c Codec) Name() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecFOR:
		return "for"
	case CodecDelta:
		return "delta"
	case CodecDict:
		return "dict"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

const (
	// HeaderSize is the fixed per-block header length.
	HeaderSize = 16

	// MaxBlockLen caps the values per block a decoder will accept; it
	// bounds the allocation a corrupt count field can demand.
	MaxBlockLen = 1 << 24

	// maxPackWidth bounds the bit width of any packed entry. The scaled
	// integers are confined to ±2^53, so FOR deltas need ≤ 55 bits and
	// zigzagged first-differences ≤ 56; the unpack loop's accumulator
	// arithmetic is only valid to 56 bits.
	maxPackWidth = 56

	// maxScale is the largest decimal scale the scaled-integer codecs try.
	maxScale = 6

	// maxScaled bounds |v·10^s|: above 2^53 float64(m) can round, breaking
	// the exactness proof.
	maxScaled = 1 << 53

	// maxDictSize is the dictionary codec's cardinality cap (indices are
	// stored in ≤ 8 bits).
	maxDictSize = 256
)

// castagnoli is the CRC-32C table; the same polynomial the segment format
// uses everywhere else.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pow10 holds the exactly-representable powers of ten up to maxScale.
var pow10 = [maxScale + 1]float64{1, 10, 100, 1000, 10000, 100000, 1000000}

// EncodeBlock appends one encoded block holding vals to dst and returns the
// extended slice plus the codec chosen. The choice is by encoded size with
// a deterministic tie-break (FOR, Delta, Dict, Raw), so identical input
// always produces identical bytes.
func EncodeBlock(dst []byte, vals []float64) ([]byte, Codec) {
	if len(vals) == 0 || len(vals) > MaxBlockLen {
		panic(fmt.Sprintf("colcodec: block of %d values (want 1..%d)", len(vals), MaxBlockLen))
	}
	codec, payloadLen := chooseCodec(vals)
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	switch codec {
	case CodecFOR:
		dst = appendFOR(dst, vals)
	case CodecDelta:
		dst = appendDelta(dst, vals)
	case CodecDict:
		dst = appendDict(dst, vals)
	default:
		dst = appendRaw(dst, vals)
	}
	payload := dst[start+HeaderSize:]
	if len(payload) != payloadLen {
		panic(fmt.Sprintf("colcodec: %s encoder produced %d bytes, size estimate said %d", codec.Name(), len(payload), payloadLen))
	}
	h := dst[start : start+HeaderSize]
	h[0] = byte(codec)
	binary.LittleEndian.PutUint32(h[4:8], uint32(len(vals)))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[12:16], crc32.Checksum(payload, castagnoli))
	return dst, codec
}

// chooseCodec sizes every applicable codec and picks the smallest.
func chooseCodec(vals []float64) (Codec, int) {
	best, bestLen := CodecRaw, rawSize(vals)
	if _, _, forW, deltaW, ok := scaledAnalysis(vals); ok {
		if n := forSize(len(vals), forW); n < bestLen {
			best, bestLen = CodecFOR, n
		}
		if n := deltaSize(len(vals), deltaW); n < bestLen {
			best, bestLen = CodecDelta, n
		}
	}
	if card, idxW, ok := dictAnalysis(vals); ok {
		if n := dictSize(len(vals), card, idxW); n < bestLen {
			best, bestLen = CodecDict, n
		}
	}
	return best, bestLen
}

// DecodeBlock decodes the block at the start of blk into dst (grown as
// needed) and returns the decoded values, the codec, and the total encoded
// length consumed. Corrupt input — truncation, checksum mismatch, unknown
// codec, inconsistent structure — returns a descriptive error.
func DecodeBlock(dst []float64, blk []byte) ([]float64, Codec, int, error) {
	if len(blk) < HeaderSize {
		return nil, 0, 0, fmt.Errorf("colcodec: block is %d bytes, shorter than the %d-byte header (truncated?)", len(blk), HeaderSize)
	}
	codec := Codec(blk[0])
	count := int(binary.LittleEndian.Uint32(blk[4:8]))
	payloadLen := int(binary.LittleEndian.Uint32(blk[8:12]))
	wantCRC := binary.LittleEndian.Uint32(blk[12:16])
	if codec >= numCodecs {
		return nil, 0, 0, fmt.Errorf("colcodec: unknown codec id %d (reader supports 0..%d)", blk[0], numCodecs-1)
	}
	if count <= 0 || count > MaxBlockLen {
		return nil, 0, 0, fmt.Errorf("colcodec: block declares %d values (want 1..%d)", count, MaxBlockLen)
	}
	if payloadLen < 0 || payloadLen > len(blk)-HeaderSize {
		return nil, 0, 0, fmt.Errorf("colcodec: block declares %d payload bytes but only %d remain (truncated?)", payloadLen, len(blk)-HeaderSize)
	}
	payload := blk[HeaderSize : HeaderSize+payloadLen]
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, 0, 0, fmt.Errorf("colcodec: %s block payload checksum mismatch (header %08x, payload %08x)", codec.Name(), wantCRC, got)
	}
	if cap(dst) < count {
		dst = make([]float64, count)
	}
	dst = dst[:count]
	var err error
	switch codec {
	case CodecRaw:
		err = decodeRaw(dst, payload)
	case CodecFOR:
		err = decodeFOR(dst, payload)
	case CodecDelta:
		err = decodeDelta(dst, payload)
	case CodecDict:
		err = decodeDict(dst, payload)
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("colcodec: %s block: %w", codec.Name(), err)
	}
	return dst, codec, HeaderSize + payloadLen, nil
}

// BlockCount reads just the value count from a block header (0 and an error
// on truncated input).
func BlockCount(blk []byte) (int, error) {
	if len(blk) < HeaderSize {
		return 0, fmt.Errorf("colcodec: block is %d bytes, shorter than the %d-byte header (truncated?)", len(blk), HeaderSize)
	}
	return int(binary.LittleEndian.Uint32(blk[4:8])), nil
}

// --- raw ---

func rawSize(vals []float64) int { return 8 * len(vals) }

func appendRaw(dst []byte, vals []float64) []byte {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeRaw(dst []float64, payload []byte) error {
	if len(payload) != 8*len(dst) {
		return fmt.Errorf("payload is %d bytes for %d values (want %d)", len(payload), len(dst), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

// --- scaled-decimal analysis (FOR and Delta) ---

// scaledAt maps v to its integer form at scale s, reporting whether the
// mapping is exact: float64(m)/10^s must reproduce v's bits. The division
// of two exactly-represented numbers rounds the true quotient once —
// exactly how strconv.ParseFloat rounds the decimal "m×10^-s" — so the
// round trip is an equality check, not an epsilon test.
func scaledAt(v float64, s int) (int64, bool) {
	if v != v || math.IsInf(v, 0) {
		return 0, false
	}
	f := math.Round(v * pow10[s])
	if math.Abs(f) > maxScaled {
		return 0, false
	}
	m := int64(f)
	if float64(m)/pow10[s] != v {
		return 0, false
	}
	// Bit-exactness beyond ==: rule out -0.0 collapsing to +0.0.
	if math.Float64bits(float64(m)/pow10[s]) != math.Float64bits(v) {
		return 0, false
	}
	return m, true
}

// scaledAnalysis finds the smallest scale at which every value is an exact
// scaled integer and returns the FOR base plus the bit widths both
// scaled-integer codecs would need. ok is false when no scale ≤ maxScale
// works.
func scaledAnalysis(vals []float64) (scale int, base int64, forW, deltaW int, ok bool) {
scales:
	for s := 0; s <= maxScale; s++ {
		minM, maxM := int64(0), int64(0)
		var prev int64
		maxDelta := uint64(0)
		for i, v := range vals {
			m, exact := scaledAt(v, s)
			if !exact {
				continue scales
			}
			if i == 0 {
				minM, maxM, prev = m, m, m
				continue
			}
			if m < minM {
				minM = m
			}
			if m > maxM {
				maxM = m
			}
			if zz := zigzag(m - prev); zz > maxDelta {
				maxDelta = zz
			}
			prev = m
		}
		forW = bits.Len64(uint64(maxM - minM))
		deltaW = bits.Len64(maxDelta)
		if forW > maxPackWidth || deltaW > maxPackWidth {
			return 0, 0, 0, 0, false
		}
		return s, minM, forW, deltaW, true
	}
	return 0, 0, 0, 0, false
}

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// --- FOR ---

// FOR payload: [0] scale, [1] bit width, [2:10) base int64 LE, then
// count entries of (m − base) packed at the bit width.
func forSize(n, w int) int { return 10 + (n*w+7)/8 }

func appendFOR(dst []byte, vals []float64) []byte {
	scale, base, w, _, ok := scaledAnalysis(vals)
	if !ok {
		panic("colcodec: FOR encoder called on a non-scalable block")
	}
	dst = append(dst, byte(scale), byte(w))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	dst = append(dst, b[:]...)
	p := packer{dst: dst, w: uint(w)}
	for _, v := range vals {
		m, _ := scaledAt(v, scale)
		p.add(uint64(m - base))
	}
	return p.finish()
}

func decodeFOR(dst []float64, payload []byte) error {
	if len(payload) < 10 {
		return fmt.Errorf("payload is %d bytes, shorter than the 10-byte FOR prologue", len(payload))
	}
	scale, w := int(payload[0]), int(payload[1])
	if scale > maxScale {
		return fmt.Errorf("scale %d out of range (max %d)", scale, maxScale)
	}
	if w > maxPackWidth {
		return fmt.Errorf("bit width %d out of range (max %d)", w, maxPackWidth)
	}
	base := int64(binary.LittleEndian.Uint64(payload[2:10]))
	if want := forSize(len(dst), w); len(payload) != want {
		return fmt.Errorf("payload is %d bytes for %d values at width %d (want %d)", len(payload), len(dst), w, want)
	}
	u := unpacker{payload: payload[10:], w: uint(w)}
	for i := range dst {
		delta, err := u.next()
		if err != nil {
			return err
		}
		m := base + int64(delta)
		if scale == 0 {
			dst[i] = float64(m)
		} else {
			// Divide, don't multiply by a precomputed inverse: decode must
			// round the true quotient exactly as the encoder's applicability
			// check did.
			dst[i] = float64(m) / pow10[scale]
		}
	}
	return nil
}

// --- Delta ---

// Delta payload: [0] scale, [1] bit width, [2:10) first scaled value int64
// LE, then count−1 zigzagged first-differences packed at the bit width.
func deltaSize(n, w int) int { return 10 + ((n-1)*w+7)/8 }

func appendDelta(dst []byte, vals []float64) []byte {
	scale, _, _, w, ok := scaledAnalysis(vals)
	if !ok {
		panic("colcodec: delta encoder called on a non-scalable block")
	}
	first, _ := scaledAt(vals[0], scale)
	dst = append(dst, byte(scale), byte(w))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(first))
	dst = append(dst, b[:]...)
	p := packer{dst: dst, w: uint(w)}
	prev := first
	for _, v := range vals[1:] {
		m, _ := scaledAt(v, scale)
		p.add(zigzag(m - prev))
		prev = m
	}
	return p.finish()
}

func decodeDelta(dst []float64, payload []byte) error {
	if len(payload) < 10 {
		return fmt.Errorf("payload is %d bytes, shorter than the 10-byte delta prologue", len(payload))
	}
	scale, w := int(payload[0]), int(payload[1])
	if scale > maxScale {
		return fmt.Errorf("scale %d out of range (max %d)", scale, maxScale)
	}
	if w > maxPackWidth {
		return fmt.Errorf("bit width %d out of range (max %d)", w, maxPackWidth)
	}
	if want := deltaSize(len(dst), w); len(payload) != want {
		return fmt.Errorf("payload is %d bytes for %d values at width %d (want %d)", len(payload), len(dst), w, want)
	}
	m := int64(binary.LittleEndian.Uint64(payload[2:10]))
	u := unpacker{payload: payload[10:], w: uint(w)}
	for i := range dst {
		if i > 0 {
			z, err := u.next()
			if err != nil {
				return err
			}
			m += unzigzag(z)
		}
		if scale == 0 {
			dst[i] = float64(m)
		} else {
			dst[i] = float64(m) / pow10[scale]
		}
	}
	return nil
}

// --- Dict ---

// Dict payload: [0] cardinality−1, [1] index bit width, then the dictionary
// (cardinality float64 bit patterns, first-appearance order, LE), then
// count indices packed at the bit width.
func dictSize(n, card, w int) int { return 2 + 8*card + (n*w+7)/8 }

// dictAnalysis scans for ≤ maxDictSize distinct bit patterns.
func dictAnalysis(vals []float64) (card, idxW int, ok bool) {
	seen := make(map[uint64]struct{}, maxDictSize+1)
	for _, v := range vals {
		seen[math.Float64bits(v)] = struct{}{}
		if len(seen) > maxDictSize {
			return 0, 0, false
		}
	}
	card = len(seen)
	return card, bits.Len(uint(card - 1)), true
}

func appendDict(dst []byte, vals []float64) []byte {
	index := make(map[uint64]int, maxDictSize)
	var dict []uint64
	for _, v := range vals {
		b := math.Float64bits(v)
		if _, ok := index[b]; !ok {
			index[b] = len(dict)
			dict = append(dict, b)
		}
	}
	w := bits.Len(uint(len(dict) - 1))
	dst = append(dst, byte(len(dict)-1), byte(w))
	var b [8]byte
	for _, d := range dict {
		binary.LittleEndian.PutUint64(b[:], d)
		dst = append(dst, b[:]...)
	}
	p := packer{dst: dst, w: uint(w)}
	for _, v := range vals {
		p.add(uint64(index[math.Float64bits(v)]))
	}
	return p.finish()
}

func decodeDict(dst []float64, payload []byte) error {
	if len(payload) < 2 {
		return fmt.Errorf("payload is %d bytes, shorter than the 2-byte dict prologue", len(payload))
	}
	card := int(payload[0]) + 1
	w := int(payload[1])
	if w > 8 {
		return fmt.Errorf("index bit width %d out of range (max 8)", w)
	}
	if want := dictSize(len(dst), card, w); len(payload) != want {
		return fmt.Errorf("payload is %d bytes for %d values, %d dict entries at width %d (want %d)", len(payload), len(dst), card, w, want)
	}
	dict := make([]float64, card)
	for i := range dict {
		dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[2+8*i:]))
	}
	u := unpacker{payload: payload[2+8*card:], w: uint(w)}
	for i := range dst {
		idx, err := u.next()
		if err != nil {
			return err
		}
		if idx >= uint64(card) {
			return fmt.Errorf("index %d out of range (dictionary holds %d entries)", idx, card)
		}
		dst[i] = dict[idx]
	}
	return nil
}

// --- bit packing ---

// packer appends fixed-width little-endian bit fields to a byte slice. The
// accumulator never holds more than 7 pending bits before the next add, so
// widths up to 57 cannot overflow; callers stay within maxPackWidth.
type packer struct {
	dst []byte
	acc uint64
	n   uint
	w   uint
}

func (p *packer) add(v uint64) {
	p.acc |= v << p.n
	p.n += p.w
	for p.n >= 8 {
		p.dst = append(p.dst, byte(p.acc))
		p.acc >>= 8
		p.n -= 8
	}
}

func (p *packer) finish() []byte {
	if p.n > 0 {
		p.dst = append(p.dst, byte(p.acc))
		p.acc, p.n = 0, 0
	}
	return p.dst
}

// unpacker reads fixed-width bit fields; widths of 0 yield zeros without
// consuming input (the all-equal FOR block).
type unpacker struct {
	payload []byte
	pos     int
	acc     uint64
	n       uint
	w       uint
}

func (u *unpacker) next() (uint64, error) {
	if u.w == 0 {
		return 0, nil
	}
	for u.n < u.w {
		if u.pos >= len(u.payload) {
			return 0, fmt.Errorf("packed data exhausted at byte %d (truncated?)", u.pos)
		}
		u.acc |= uint64(u.payload[u.pos]) << u.n
		u.pos++
		u.n += 8
	}
	v := u.acc & (1<<u.w - 1)
	u.acc >>= u.w
	u.n -= u.w
	return v, nil
}
