package colcodec

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// bytesToVals reinterprets fuzz bytes as a float64 block (at least one
// value; at most a short block so the fuzzer iterates fast).
func bytesToVals(data []byte) []float64 {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	if n > 4096 {
		n = 4096
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals
}

// FuzzRoundTrip: whatever bit patterns the fuzzer invents, EncodeBlock →
// DecodeBlock must reproduce them exactly. This covers every codec — the
// chooser routes integer-looking inputs to FOR/Delta, repetitive ones to
// Dict, the rest to Raw.
func FuzzRoundTrip(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1, 2, 3, 4, 5))                             // FOR/Delta
	f.Add(seed(0.0001, 0.0002, 0.0003))                    // scaled decimal
	f.Add(seed(math.Pi, math.Pi, math.E, math.Pi, math.E)) // dict
	f.Add(seed(math.NaN(), math.Inf(1), -0.0))             // non-finite
	f.Add(seed(0.1234567890123, 7.5e300, -2.5e-300))       // raw
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToVals(data)
		if vals == nil {
			t.Skip()
		}
		blk, codec := EncodeBlock(nil, vals)
		got, gotCodec, n, err := DecodeBlock(nil, blk)
		if err != nil {
			t.Fatalf("decode of freshly encoded %s block failed: %v", codec.Name(), err)
		}
		if gotCodec != codec || n != len(blk) || len(got) != len(vals) {
			t.Fatalf("decode shape mismatch: codec %s/%s, %d/%d bytes, %d/%d values",
				gotCodec.Name(), codec.Name(), n, len(blk), len(got), len(vals))
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("%s codec: value %d round-tripped %x -> %x", codec.Name(), i,
					math.Float64bits(vals[i]), math.Float64bits(got[i]))
			}
		}
	})
}

// FuzzDecode: arbitrary bytes must never panic the decoder — they either
// decode (if they happen to be a valid block) or return an error.
func FuzzDecode(f *testing.F) {
	blk, _ := EncodeBlock(nil, []float64{1, 2, 3, 700})
	f.Add(blk)
	blk2, _ := EncodeBlock(nil, []float64{math.Pi, math.E, math.Pi, math.E, math.Pi, math.E, math.Pi, math.E})
	f.Add(blk2)
	blk3, _ := EncodeBlock(nil, []float64{0.5, 0.25, 0.125})
	f.Add(blk3)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		dst, _, n, err := DecodeBlock(nil, data)
		if err == nil {
			if n < HeaderSize || n > len(data) {
				t.Fatalf("successful decode reports %d consumed bytes of %d", n, len(data))
			}
			if len(dst) == 0 {
				t.Fatal("successful decode produced no values")
			}
		}
	})
}

// FuzzDecodeResealed: corrupt the payload but fix up the checksum, so the
// structural validators (not the CRC) are what the fuzzer attacks.
func FuzzDecodeResealed(f *testing.F) {
	for _, vals := range [][]float64{
		{1, 2, 3, 700, 5, 6},
		{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007},
		{math.Pi, math.E, math.Pi, math.E, math.Pi, math.E, math.Pi, math.E, math.Pi, math.E},
		{0.123456789, 0.987654321},
	} {
		blk, _ := EncodeBlock(nil, vals)
		f.Add(blk, uint8(0), uint16(0), uint8(0))
	}
	f.Fuzz(func(t *testing.T, blk []byte, codecByte uint8, pos uint16, xor uint8) {
		if len(blk) <= HeaderSize {
			t.Skip()
		}
		b := append([]byte(nil), blk...)
		b[0] = codecByte % uint8(numCodecs)
		p := HeaderSize + int(pos)%(len(b)-HeaderSize)
		b[p] ^= xor
		payload := b[HeaderSize:]
		if int(binary.LittleEndian.Uint32(b[8:12])) > len(payload) {
			binary.LittleEndian.PutUint32(b[8:12], uint32(len(payload)))
		}
		plen := int(binary.LittleEndian.Uint32(b[8:12]))
		binary.LittleEndian.PutUint32(b[12:16], crc32.Checksum(payload[:plen], castagnoli))
		DecodeBlock(nil, b) // must not panic; errors are expected
	})
}
