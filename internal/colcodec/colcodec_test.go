package colcodec

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// roundTrip encodes vals, decodes the result, and requires bit-identical
// values and the expected codec choice (want < 0 skips the codec check).
func roundTrip(t *testing.T, vals []float64, want Codec) {
	t.Helper()
	blk, codec := EncodeBlock(nil, vals)
	if want != Codec(255) && codec != want {
		t.Fatalf("chose codec %s, want %s", codec.Name(), want.Name())
	}
	got, gotCodec, n, err := DecodeBlock(nil, blk)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotCodec != codec || n != len(blk) {
		t.Fatalf("decode reports codec %s over %d bytes; encode produced %s over %d", gotCodec.Name(), n, codec.Name(), len(blk))
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: decoded %x, want %x (%v vs %v)", i, math.Float64bits(got[i]), math.Float64bits(vals[i]), got[i], vals[i])
		}
	}
}

const anyCodec = Codec(255)

func TestRoundTripInteger(t *testing.T) {
	rng := xrand.New(1)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(rng.Intn(1440)) // flight-delay-like integer range
	}
	roundTrip(t, vals, CodecFOR)
}

func TestRoundTripDecimal(t *testing.T) {
	// %.4f-formatted values: the CSV round-trip shape datagen produces.
	rng := xrand.New(2)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(rng.Intn(14_400_000)) / 10000
	}
	roundTrip(t, vals, CodecFOR)
}

func TestRoundTripSorted(t *testing.T) {
	// A near-sorted integer column: deltas are tiny, so Delta beats FOR.
	vals := make([]float64, 1000)
	rng := xrand.New(3)
	for i := range vals {
		vals[i] = float64(1_000_000 + 3*i + rng.Intn(3))
	}
	roundTrip(t, vals, CodecDelta)
}

func TestRoundTripDict(t *testing.T) {
	// Low cardinality with values no decimal scale can express exactly.
	alphabet := []float64{math.Pi, math.E, math.Sqrt2, math.Inf(1), math.NaN(), -0.0}
	rng := xrand.New(4)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = alphabet[rng.Intn(len(alphabet))]
	}
	roundTrip(t, vals, CodecDict)
}

func TestRoundTripRaw(t *testing.T) {
	// Full-precision uniform floats: no scale fits, cardinality is high.
	rng := xrand.New(5)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 100 * rng.Float64()
	}
	roundTrip(t, vals, CodecRaw)
}

func TestRoundTripEdgeBlocks(t *testing.T) {
	cases := [][]float64{
		{0},
		{42.5},
		{math.NaN()},
		{-0.0, 0.0},
		{math.MaxFloat64, -math.MaxFloat64},
		{1e-308, 2.2250738585072014e-308}, // subnormal boundary
		make([]float64, 4096),             // all zeros
	}
	for _, vals := range cases {
		roundTrip(t, vals, anyCodec)
	}
}

func TestScaledAtExactness(t *testing.T) {
	// Values a decimal scale cannot express must be rejected, not
	// approximated.
	for _, v := range []float64{math.Pi, 1.0 / 3, 0.1 + 0.2, math.Nextafter(1, 2)} {
		for s := 0; s <= maxScale; s++ {
			if m, ok := scaledAt(v, s); ok {
				if got := float64(m) / pow10[s]; math.Float64bits(got) != math.Float64bits(v) {
					t.Fatalf("scaledAt(%v, %d) accepted an inexact mapping m=%d", v, s, m)
				}
			}
		}
	}
	if _, ok := scaledAt(math.Copysign(0, -1), 0); ok {
		t.Fatal("scaledAt accepted -0.0, which integers cannot round-trip")
	}
	if _, ok := scaledAt(float64(1<<60), 0); ok {
		t.Fatal("scaledAt accepted a value beyond the 2^53 exact-integer range")
	}
}

// TestDecodeCorrupt flips, truncates, and rewrites encoded blocks; every
// mutation must produce a descriptive error, never a panic or silent
// success with wrong values.
func TestDecodeCorrupt(t *testing.T) {
	rng := xrand.New(6)
	forVals := make([]float64, 64)
	for i := range forVals {
		forVals[i] = float64(rng.Intn(1000)) // jumps both ways: range beats deltas
	}
	dictVals := make([]float64, 64)
	for i := range dictVals {
		dictVals[i] = []float64{math.Pi, math.E, math.Sqrt2}[rng.Intn(3)]
	}
	fixtures := map[string][]float64{
		"for":   forVals,
		"delta": {1000, 1001, 1003, 1004, 1010, 1011, 1012, 1013, 1014, 1015, 1016, 1017},
		"dict":  dictVals,
		"raw":   {rng.Float64(), rng.Float64(), rng.Float64()},
	}
	for name, vals := range fixtures {
		blk, codec := EncodeBlock(nil, vals)
		if codec.Name() != name {
			t.Fatalf("fixture %q encoded as %s", name, codec.Name())
		}
		t.Run(name, func(t *testing.T) {
			cases := []struct {
				name    string
				mutate  func(b []byte) []byte
				errWant string
			}{
				{"truncated-header", func(b []byte) []byte { return b[:HeaderSize-1] }, "truncated"},
				{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }, "truncated"},
				{"unknown-codec", func(b []byte) []byte { b[0] = 200; return b }, "unknown codec"},
				{"zero-count", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:8], 0); return b }, "declares 0 values"},
				{"huge-count", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:8], 1<<31-1); return b }, "values"},
				{"payload-flip", func(b []byte) []byte { b[HeaderSize] ^= 0x40; return b }, "checksum mismatch"},
				{"crc-flip", func(b []byte) []byte { b[12] ^= 1; return b }, "checksum mismatch"},
			}
			for _, tc := range cases {
				b := tc.mutate(append([]byte(nil), blk...))
				_, _, _, err := DecodeBlock(nil, b)
				if err == nil {
					t.Fatalf("%s: corrupt block decoded without error", tc.name)
				}
				if !strings.Contains(err.Error(), tc.errWant) {
					t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errWant)
				}
			}
		})
	}
}

// TestDecodeCraftedStructure rewrites payloads with a valid CRC but broken
// structure: the CRC passes, so the structural validators are the only
// defense.
func TestDecodeCraftedStructure(t *testing.T) {
	reseal := func(b []byte) []byte {
		payload := b[HeaderSize:]
		binary.LittleEndian.PutUint32(b[8:12], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[12:16], crc32.Checksum(payload, castagnoli))
		return b
	}
	blk, _ := EncodeBlock(nil, []float64{1, 2, 3, 700, 5, 6}) // FOR
	for _, tc := range []struct {
		name    string
		mutate  func(b []byte) []byte
		errWant string
	}{
		{"for-bad-scale", func(b []byte) []byte { b[HeaderSize] = 9; return reseal(b) }, "scale 9 out of range"},
		{"for-bad-width", func(b []byte) []byte { b[HeaderSize+1] = 60; return reseal(b) }, "width 60 out of range"},
		{"for-short-prologue", func(b []byte) []byte { return reseal(b[:HeaderSize+4]) }, "prologue"},
	} {
		b := tc.mutate(append([]byte(nil), blk...))
		_, _, _, err := DecodeBlock(nil, b)
		if err == nil || !strings.Contains(err.Error(), tc.errWant) {
			t.Fatalf("%s: got %v, want error mentioning %q", tc.name, err, tc.errWant)
		}
	}

	// Dict with an out-of-range packed index: 3 dictionary entries need
	// 2-bit indices, so a forged index 3 points past the dictionary.
	blk, codec := EncodeBlock(nil, []float64{math.Pi, math.E, math.Sqrt2, math.Pi, math.E, math.Sqrt2, math.Pi, math.E, math.Sqrt2, math.Pi})
	if codec != CodecDict {
		t.Fatalf("dict fixture encoded as %s", codec.Name())
	}
	b := append([]byte(nil), blk...)
	b[len(b)-1] = 0xFF // the trailing packed indices become 0b11 = 3
	b = reseal(b)
	if _, _, _, err := DecodeBlock(nil, b); err == nil {
		t.Fatal("dict block with out-of-range index decoded without error")
	}
}

// TestEncodeAppends verifies EncodeBlock extends dst in place so column
// writers can build multi-block buffers without copies.
func TestEncodeAppends(t *testing.T) {
	a, _ := EncodeBlock(nil, []float64{1, 2, 3})
	both, _ := EncodeBlock(append([]byte(nil), a...), []float64{4, 5, 6})
	if len(both) != 2*len(a) {
		t.Fatalf("appended encode is %d bytes, want %d", len(both), 2*len(a))
	}
	got, _, n, err := DecodeBlock(nil, both)
	if err != nil || len(got) != 3 || n != len(a) {
		t.Fatalf("first block: %v (%d values, %d bytes)", err, len(got), n)
	}
	got, _, _, err = DecodeBlock(got, both[n:])
	if err != nil || got[2] != 6 {
		t.Fatalf("second block: %v %v", err, got)
	}
}
