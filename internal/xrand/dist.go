package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a bounded one-dimensional distribution. All values produced by
// Sample must lie in [Min(), Max()], and Mean must return the exact
// analytical mean — the experiment harness uses it as ground truth when the
// underlying population is virtual (not materialized).
type Dist interface {
	// Sample draws one value using the supplied generator.
	Sample(r *RNG) float64
	// Mean returns the exact expected value of the distribution.
	Mean() float64
	// Min and Max bound the support.
	Min() float64
	Max() float64
}

// BulkDist is implemented by distributions that can fill a whole block of
// samples in one call. SampleInto must produce exactly the stream that
// len(dst) successive Sample calls would, so block and scalar sampling are
// interchangeable bit for bit.
type BulkDist interface {
	Dist
	// SampleInto fills dst with independent draws.
	SampleInto(r *RNG, dst []float64)
}

// SampleInto fills dst with independent draws from d. The common bounded
// distributions are special-cased into tight loops so block draws pay one
// dispatch per block instead of one per sample; every path produces the
// same stream as len(dst) successive d.Sample(r) calls.
func SampleInto(d Dist, r *RNG, dst []float64) {
	switch t := d.(type) {
	case Uniform:
		span := t.Hi - t.Lo
		for i := range dst {
			dst[i] = t.Lo + span*r.Float64()
		}
	case Bernoulli:
		for i := range dst {
			if r.Float64() < t.P {
				dst[i] = t.Hi
			} else {
				dst[i] = t.Lo
			}
		}
	case Point:
		for i := range dst {
			dst[i] = float64(t)
		}
	case BulkDist:
		t.SampleInto(r, dst)
	default:
		for i := range dst {
			dst[i] = d.Sample(r)
		}
	}
}

// Point is a degenerate distribution concentrated at a single value.
type Point float64

// Sample returns the point value.
func (p Point) Sample(*RNG) float64 { return float64(p) }

// Mean returns the point value.
func (p Point) Mean() float64 { return float64(p) }

// Min returns the point value.
func (p Point) Min() float64 { return float64(p) }

// Max returns the point value.
func (p Point) Max() float64 { return float64(p) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Sample draws uniformly from [Lo, Hi].
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Min returns Lo.
func (u Uniform) Min() float64 { return u.Lo }

// Max returns Hi.
func (u Uniform) Max() float64 { return u.Hi }

// Bernoulli is a two-point distribution on {Lo, Hi}: it returns Hi with
// probability P and Lo otherwise. The paper's "bernoulli" workload uses
// Lo=0, Hi=100 with P chosen so the mean matches a target.
type Bernoulli struct {
	Lo, Hi float64
	P      float64 // probability of Hi
}

// NewBernoulliWithMean returns a Bernoulli distribution on {lo, hi} whose
// mean is exactly mean. It panics if mean lies outside [lo, hi].
func NewBernoulliWithMean(lo, hi, mean float64) Bernoulli {
	if hi <= lo {
		panic("xrand: Bernoulli requires hi > lo")
	}
	p := (mean - lo) / (hi - lo)
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("xrand: Bernoulli mean %v outside [%v, %v]", mean, lo, hi))
	}
	return Bernoulli{Lo: lo, Hi: hi, P: p}
}

// Sample draws from the two-point distribution.
func (b Bernoulli) Sample(r *RNG) float64 {
	if r.Float64() < b.P {
		return b.Hi
	}
	return b.Lo
}

// Mean returns Lo + P*(Hi-Lo).
func (b Bernoulli) Mean() float64 { return b.Lo + b.P*(b.Hi-b.Lo) }

// Min returns the lower point of the support.
func (b Bernoulli) Min() float64 { return b.Lo }

// Max returns the upper point of the support.
func (b Bernoulli) Max() float64 { return b.Hi }

// TruncNormal is a normal distribution with the given location and scale,
// truncated by rejection to [Lo, Hi]. The paper's "truncnorm" workload
// truncates to [0, 100].
//
// Mean is computed analytically from the standard truncated-normal formula
// so it is exact even when the truncation is asymmetric.
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample draws from the truncated normal. When the bulk of the normal lies
// inside the window, plain rejection is used. When the window sits deep in
// a tail (the mean is far outside [Lo, Hi]), rejection would starve, so the
// sampler switches to Robert's (1995) exponential-proposal method for the
// one-sided standard-normal tail, which has bounded expected cost at any
// truncation depth.
func (t TruncNormal) Sample(r *RNG) float64 {
	if t.Sigma <= 0 {
		return clamp(t.Mu, t.Lo, t.Hi)
	}
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	const tailCut = 3.0
	switch {
	case a >= tailCut:
		// Right tail of the standard normal, mirrored into [a, b].
		return t.Mu + t.Sigma*sampleNormalTail(r, a, b)
	case b <= -tailCut:
		// Left tail: mirror.
		return t.Mu - t.Sigma*sampleNormalTail(r, -b, -a)
	}
	for {
		x := r.NormFloat64()
		if x >= a && x <= b {
			return t.Mu + t.Sigma*x
		}
	}
}

// sampleNormalTail draws a standard normal conditioned on [a, b] with
// a >= 3 (deep right tail), via Robert's exponential rejection: propose
// x = a − ln(U)/λ with λ = (a + sqrt(a²+4))/2 and accept with probability
// exp(−(x−λ)²/2); re-propose if x lands past b (vanishingly rare for the
// windows this package builds).
func sampleNormalTail(r *RNG, a, b float64) float64 {
	lambda := (a + math.Sqrt(a*a+4)) / 2
	for {
		x := a - math.Log(1-r.Float64())/lambda
		if x > b {
			continue
		}
		d := x - lambda
		if r.Float64() <= math.Exp(-d*d/2) {
			return x
		}
	}
}

// Mean returns the analytical mean of the truncated normal:
// mu + sigma * (phi(a) - phi(b)) / (Phi(b) - Phi(a)), with the window
// probability computed in tail-stable form so deep truncations (the mean
// many sigmas outside [Lo, Hi]) do not cancel to zero.
func (t TruncNormal) Mean() float64 {
	if t.Sigma <= 0 {
		return clamp(t.Mu, t.Lo, t.Hi)
	}
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	za := stdNormPDF(a)
	zb := stdNormPDF(b)
	den := normWindowProb(a, b)
	if den <= 0 {
		return clamp(t.Mu, t.Lo, t.Hi)
	}
	m := t.Mu + t.Sigma*(za-zb)/den
	return clamp(m, t.Lo, t.Hi)
}

// normWindowProb returns P(a <= Z <= b) for a standard normal Z, computed
// from complementary error functions on the side where the window lies so
// the subtraction never catastrophically cancels.
func normWindowProb(a, b float64) float64 {
	switch {
	case a > 0:
		// Right tail: Q(a) − Q(b) with Q(x) = erfc(x/√2)/2.
		return 0.5 * (math.Erfc(a/math.Sqrt2) - math.Erfc(b/math.Sqrt2))
	case b < 0:
		// Left tail, by symmetry.
		return 0.5 * (math.Erfc(-b/math.Sqrt2) - math.Erfc(-a/math.Sqrt2))
	default:
		return stdNormCDF(b) - stdNormCDF(a)
	}
}

// Min returns the lower truncation bound.
func (t TruncNormal) Min() float64 { return t.Lo }

// Max returns the upper truncation bound.
func (t TruncNormal) Max() float64 { return t.Hi }

// Mixture is a finite mixture of component distributions with the given
// weights. Weights need not be normalized.
type Mixture struct {
	Components []Dist
	Weights    []float64

	cum []float64 // cached cumulative weights
}

// NewMixture returns a mixture over the given components and weights.
// It panics if the lengths differ, no components are given, or any weight is
// negative.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("xrand: mixture needs equal, nonzero numbers of components and weights")
	}
	m := &Mixture{Components: components, Weights: weights}
	m.cum = make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("xrand: negative mixture weight")
		}
		total += w
		m.cum[i] = total
	}
	if total <= 0 {
		panic("xrand: mixture weights sum to zero")
	}
	return m
}

// Sample picks a component proportionally to its weight and samples from it.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64() * m.cum[len(m.cum)-1]
	i := sort.SearchFloat64s(m.cum, u)
	if i == len(m.Components) {
		i--
	}
	return m.Components[i].Sample(r)
}

// Mean returns the weighted average of the component means.
func (m *Mixture) Mean() float64 {
	total := m.cum[len(m.cum)-1]
	mean := 0.0
	for i, c := range m.Components {
		mean += m.Weights[i] / total * c.Mean()
	}
	return mean
}

// Min returns the smallest component lower bound.
func (m *Mixture) Min() float64 {
	lo := math.Inf(1)
	for _, c := range m.Components {
		lo = math.Min(lo, c.Min())
	}
	return lo
}

// Max returns the largest component upper bound.
func (m *Mixture) Max() float64 {
	hi := math.Inf(-1)
	for _, c := range m.Components {
		hi = math.Max(hi, c.Max())
	}
	return hi
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// stdNormPDF is the standard normal density.
func stdNormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal cumulative distribution function,
// computed via the complementary error function.
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
