package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs from different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	sum := 0.0
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt64nUniform(t *testing.T) {
	// Chi-squared-style check over 10 buckets.
	r := New(10)
	const buckets, n = 10, 500_000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Int64n(buckets)]++
	}
	expect := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, expect)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	check := func(n uint8) bool {
		if n == 0 {
			return true
		}
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	after := 0
	for _, v := range xs {
		after += v
	}
	if sum != after {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(14)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs between parent and child", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// TestNewStreamPositional pins the property the parallel round driver
// depends on: a stream is a pure function of (base, idx) — deriving the
// same index twice, or in any order relative to its siblings, yields the
// identical generator.
func TestNewStreamPositional(t *testing.T) {
	forward := make([]uint64, 8)
	for i := range forward {
		forward[i] = NewStream(99, uint64(i)).Uint64()
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := NewStream(99, uint64(i)).Uint64(); got != forward[i] {
			t.Fatalf("stream %d changed across derivation orders: %d vs %d", i, got, forward[i])
		}
	}
}

// TestNewStreamDistinct: distinct indices and distinct bases must yield
// distinct streams.
func TestNewStreamDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for idx := uint64(0); idx < 1000; idx++ {
		v := NewStream(7, idx).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("streams %d and %d collide on first output", prev, idx)
		}
		seen[v] = idx
	}
	if NewStream(1, 0).Uint64() == NewStream(2, 0).Uint64() {
		t.Fatal("same index under different bases produced the same stream")
	}
}

// TestNewStreamPairwiseIndependence: sibling streams should not track each
// other (catching e.g. a derivation that only offsets the state).
func TestNewStreamPairwiseIndependence(t *testing.T) {
	a := NewStream(3, 0)
	b := NewStream(3, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/1000 identical outputs between sibling streams", same)
	}
}

// TestNewStreamUniform: each stream is still a sound generator.
func TestNewStreamUniform(t *testing.T) {
	r := NewStream(12345, 42)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("stream mean %v far from 0.5", mean)
	}
}
