package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// empiricalMean estimates a distribution's mean with n samples.
func empiricalMean(d Dist, n int, seed uint64) float64 {
	r := New(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

// checkDist verifies a distribution's analytical mean against sampling and
// that every sample respects the declared bounds.
func checkDist(t *testing.T, d Dist, tol float64) {
	t.Helper()
	r := New(99)
	for i := 0; i < 10_000; i++ {
		v := d.Sample(r)
		if v < d.Min()-1e-9 || v > d.Max()+1e-9 {
			t.Fatalf("sample %v outside [%v, %v]", v, d.Min(), d.Max())
		}
	}
	emp := empiricalMean(d, 400_000, 7)
	if math.Abs(emp-d.Mean()) > tol {
		t.Fatalf("empirical mean %v vs analytical %v (tol %v)", emp, d.Mean(), tol)
	}
}

func TestPoint(t *testing.T)   { checkDist(t, Point(42), 1e-12) }
func TestUniform(t *testing.T) { checkDist(t, Uniform{Lo: 10, Hi: 30}, 0.1) }

func TestBernoulli(t *testing.T) {
	checkDist(t, NewBernoulliWithMean(0, 100, 37), 0.5)
}

func TestBernoulliMeanExact(t *testing.T) {
	for _, mean := range []float64{0, 1, 50, 99, 100} {
		b := NewBernoulliWithMean(0, 100, mean)
		if math.Abs(b.Mean()-mean) > 1e-12 {
			t.Fatalf("Bernoulli mean %v != %v", b.Mean(), mean)
		}
	}
}

func TestBernoulliPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean outside support")
		}
	}()
	NewBernoulliWithMean(0, 100, 101)
}

func TestTruncNormalSymmetric(t *testing.T) {
	// Symmetric truncation: mean equals mu exactly.
	d := TruncNormal{Mu: 50, Sigma: 10, Lo: 0, Hi: 100}
	if math.Abs(d.Mean()-50) > 1e-9 {
		t.Fatalf("symmetric truncnorm mean %v != 50", d.Mean())
	}
	checkDist(t, d, 0.1)
}

func TestTruncNormalAsymmetric(t *testing.T) {
	// Mean near the edge: analytical mean must shift inward, and the
	// empirical mean must agree.
	d := TruncNormal{Mu: 5, Sigma: 10, Lo: 0, Hi: 100}
	if d.Mean() <= 5 {
		t.Fatalf("left-truncated mean %v should exceed mu", d.Mean())
	}
	checkDist(t, d, 0.1)
}

func TestTruncNormalZeroSigma(t *testing.T) {
	d := TruncNormal{Mu: 42, Sigma: 0, Lo: 0, Hi: 100}
	if d.Mean() != 42 {
		t.Fatalf("zero-sigma mean %v", d.Mean())
	}
	if v := d.Sample(New(1)); v != 42 {
		t.Fatalf("zero-sigma sample %v", v)
	}
}

func TestMixture(t *testing.T) {
	m := NewMixture(
		[]Dist{Point(10), Point(20), Point(60)},
		[]float64{1, 2, 1},
	)
	want := (10 + 2*20 + 60) / 4.0
	if math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("mixture mean %v != %v", m.Mean(), want)
	}
	if m.Min() != 10 || m.Max() != 60 {
		t.Fatalf("mixture bounds [%v, %v]", m.Min(), m.Max())
	}
	checkDist(t, m, 0.2)
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Dist{Point(1)}, []float64{1, 2}) },
		func() { NewMixture([]Dist{Point(1)}, []float64{-1}) },
		func() { NewMixture([]Dist{Point(1)}, []float64{0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMixtureSamplesFromComponents(t *testing.T) {
	// A two-point mixture must produce only the two component values, in
	// roughly the weighted proportion.
	m := NewMixture([]Dist{Point(0), Point(1)}, []float64{3, 1})
	r := New(3)
	ones := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		switch m.Sample(r) {
		case 1:
			ones++
		case 0:
		default:
			t.Fatal("unexpected sample value")
		}
	}
	if frac := float64(ones) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("component weight fraction %v != 0.25", frac)
	}
}

// Property: for arbitrary (bounded) truncnorm parameters, samples stay in
// bounds and the analytical mean lies within them too.
func TestTruncNormalProperty(t *testing.T) {
	r := New(5)
	check := func(muRaw, sigmaRaw uint16) bool {
		mu := float64(muRaw%200) - 50 // [-50, 150): may sit outside the window
		sigma := 0.1 + float64(sigmaRaw%300)/10
		d := TruncNormal{Mu: mu, Sigma: sigma, Lo: 0, Hi: 100}
		m := d.Mean()
		if m < 0 || m > 100 || math.IsNaN(m) {
			return false
		}
		for i := 0; i < 64; i++ {
			v := d.Sample(r)
			if v < 0 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStdNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
	}
	for _, c := range cases {
		if got := stdNormCDF(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTruncNormalDeepTail(t *testing.T) {
	// Mean far below the truncation window: the tail sampler must agree
	// with the analytical mean (this is the flight-delay regime where the
	// old rejection fallback silently produced uniform garbage).
	d := TruncNormal{Mu: -139, Sigma: 45, Lo: 0, Hi: 1440}
	checkDist(t, d, 0.2)
	// And even deeper.
	d2 := TruncNormal{Mu: -400, Sigma: 45, Lo: 0, Hi: 1440}
	checkDist(t, d2, 0.1)
}

func TestSampleIntoMatchesScalar(t *testing.T) {
	dists := map[string]Dist{
		"uniform":   Uniform{Lo: -3, Hi: 9},
		"bernoulli": Bernoulli{Lo: 1, Hi: 5, P: 0.25},
		"point":     Point(42),
		"truncnorm": TruncNormal{Mu: 10, Sigma: 4, Lo: 0, Hi: 20},
		"mixture": NewMixture(
			[]Dist{Uniform{Lo: 0, Hi: 1}, Uniform{Lo: 10, Hi: 11}},
			[]float64{3, 1}),
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			r1, r2 := New(17), New(17)
			want := make([]float64, 100)
			for i := range want {
				want[i] = d.Sample(r1)
			}
			got := make([]float64, 100)
			SampleInto(d, r2, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s draw %d: bulk %v, scalar %v", name, i, got[i], want[i])
				}
			}
		})
	}
}
