// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator and the distribution primitives used throughout the
// repository.
//
// Every experiment in this repository is seeded, and results must be
// reproducible bit-for-bit across runs and platforms. The standard library's
// math/rand is seedable but its stream is not guaranteed stable across Go
// releases, so we implement our own generator: splitmix64 for seeding and
// xoshiro256** for the main stream, both public-domain algorithms with
// well-studied statistical properties.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; use Split to derive independent
// generators for concurrent work.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand a single seed word into the xoshiro256** state, and to
// derive child seeds in Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given value. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed is
	// astronomically unlikely to produce all-zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's. The receiver is advanced.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	return New(seed ^ 0xa5a5a5a5a5a5a5a5)
}

// NewStream returns the idx-th generator of the family derived from base.
// Unlike Split, which keys each child on call order, NewStream keys on idx
// alone: the same (base, idx) pair always yields the same stream no matter
// how many sibling streams exist or in what order they are created. That
// positional derivation is what lets parallel per-group sampling stay
// bit-for-bit independent of worker count and scheduling — group i's
// randomness is a pure function of the run seed and i, never of which
// goroutine drew first. Statistical independence across idx comes from
// pushing base and idx through two splitmix64 finalization rounds before
// seeding xoshiro256**.
func NewStream(base, idx uint64) *RNG {
	r := Stream(base, idx)
	return &r
}

// Stream is NewStream by value: identical state for the same (base, idx),
// but allocation-free, so a caller with k streams can lay them out in one
// contiguous slice instead of k heap objects.
func Stream(base, idx uint64) RNG {
	sm := base
	mixed := splitmix64(&sm)
	sm = mixed ^ (idx+1)*0x9e3779b97f4a7c15
	seed := splitmix64(&sm)
	var r RNG
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// Same all-zero guard as New.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Int64n(int64(n)))
}

// Int64n returns a uniformly distributed int64 in [0, n). It panics if
// n <= 0. Lemire's nearly-divisionless rejection method keeps the result
// unbiased.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n called with non-positive n")
	}
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int64(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It is a little slower than a ziggurat but has no tables and is
// trivially portable.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
