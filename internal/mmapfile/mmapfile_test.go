package mmapfile

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenReadsBytes(t *testing.T) {
	payload := []byte("hello, columnar world")
	path := writeFile(t, "blob", payload)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != len(payload) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(payload))
	}
	if !bytes.Equal(m.Bytes(), payload) {
		t.Fatalf("Bytes = %q, want %q", m.Bytes(), payload)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := writeFile(t, "empty", nil)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	want := []float64{0, 1.5, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64}
	buf := make([]byte, 8*len(want))
	for i, v := range want {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	path := writeFile(t, "floats", buf)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, err := Float64s(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFloat64sRejectsRaggedLength(t *testing.T) {
	if _, err := Float64s(make([]byte, 12)); err == nil {
		t.Fatal("Float64s accepted a length not divisible by 8")
	}
}

func TestFloat64sRejectsMisalignment(t *testing.T) {
	buf := make([]byte, 24)
	if _, err := Float64s(buf[4:20]); err == nil {
		t.Fatal("Float64s accepted a misaligned base")
	}
}

func TestFloat64sEmpty(t *testing.T) {
	got, err := Float64s(nil)
	if err != nil || got != nil {
		t.Fatalf("Float64s(nil) = %v, %v; want nil, nil", got, err)
	}
}

func TestDropPageCache(t *testing.T) {
	path := writeFile(t, "blob", bytes.Repeat([]byte{7}, 1<<16))
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Best-effort everywhere: must not error on supported platforms and
	// must be a no-op elsewhere; bytes stay readable either way.
	if err := m.DropPageCache(); err != nil {
		t.Fatalf("DropPageCache: %v", err)
	}
	if m.Bytes()[0] != 7 || m.Bytes()[m.Len()-1] != 7 {
		t.Fatal("bytes changed after DropPageCache")
	}
}
