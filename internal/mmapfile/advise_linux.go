//go:build linux

package mmapfile

import (
	"os"
	"syscall"
)

// posix_fadvise advice value: the application will not access the pages in
// the near future, so the kernel may drop them from the page cache.
const fadvDontNeed = 4

// dropPageCache evicts the file's cached pages via posix_fadvise(DONTNEED).
// The file's dirty pages are already on disk (mappings are read-only), so
// this is safe and needs no privileges; it only resets residency so the
// next touch pays a real fault — what the cold-read benchmark measures.
func dropPageCache(f *os.File) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, fadvDontNeed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

// adviseRandom marks the mapped range as randomly accessed
// (madvise(MADV_RANDOM)): the kernel disables readahead, so each fault
// reads only the touched page instead of a cluster around it. For
// draw-based sampling — whose whole point is touching O(samples) pages of
// a table, not O(table) — readahead would inflate residency by an order
// of magnitude.
func adviseRandom(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Madvise(data, syscall.MADV_RANDOM)
}
