// Package mmapfile provides read-only memory-mapped file access with a
// portable read-at fallback. It is the IO shim under the dataset layer's
// columnar segment reader: on platforms with mmap the mapped bytes are the
// file — the OS page cache becomes the tiering layer and draws fault in
// exactly the pages they touch — while on platforms without mmap (or when
// built with -tags nommap) the same API is served from a heap copy read
// once at open, trading residency for portability.
//
// Mappings are read-only; mutating the returned byte slice is undefined
// behaviour on the mapped path (SIGSEGV) and silently local on the
// fallback path, so callers must treat the bytes as immutable either way.
package mmapfile

import (
	"fmt"
	"os"
	"unsafe"
)

// Mapping is a read-only view of one file's bytes.
type Mapping struct {
	f      *os.File
	data   []byte
	mapped bool
	closed bool
}

// Open maps the named file read-only. Empty files yield an empty, valid
// mapping.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{f: f}, nil
	}
	if size != int64(int(size)) {
		f.Close()
		return nil, fmt.Errorf("mmapfile: %s: size %d exceeds the address space", path, size)
	}
	data, mapped, err := openMapping(f, int(size))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mmapfile: %s: %w", path, err)
	}
	return &Mapping{f: f, data: data, mapped: mapped}, nil
}

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Bytes returns the file's bytes. The slice is valid until Close; callers
// must not mutate it.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the bytes are an OS mapping (true) or a heap copy
// read at open (false, the nommap fallback). Callers use this only for
// diagnostics — the two paths serve identical bytes.
func (m *Mapping) Mapped() bool { return m.mapped }

// File returns the underlying file, kept open for the mapping's lifetime.
// Callers may ReadAt from it but must not close or mutate it.
func (m *Mapping) File() *os.File { return m.f }

// Close unmaps (or releases) the bytes and closes the file. The slices
// handed out by Bytes and Float64s must not be used afterwards. Close is
// idempotent.
func (m *Mapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	var err error
	if m.data != nil {
		err = closeMapping(m.data, m.mapped)
		m.data = nil
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// DropPageCache asks the OS to evict the file's pages from the page cache
// (best effort; a no-op where unsupported). It exists so cold-read
// benchmarks can measure first-touch fault cost without root.
func (m *Mapping) DropPageCache() error {
	if m.closed || !m.mapped {
		return nil
	}
	return dropPageCache(m.f)
}

// AdviseRandom marks the mapping as randomly accessed, disabling the
// kernel's readahead (best effort; a no-op where unsupported or on the
// heap fallback). Draw-based sampling touches O(samples) scattered pages;
// without this advice each fault drags a readahead cluster into memory,
// inflating residency well past the pages actually read.
func (m *Mapping) AdviseRandom() error {
	if m.closed || !m.mapped {
		return nil
	}
	return adviseRandom(m.data)
}

// HostLittleEndian reports whether the running platform stores multi-byte
// integers least-significant byte first. Segment files are defined to be
// little-endian, and the zero-copy Float64s reinterpretation is only valid
// on a little-endian host; big-endian platforms must reject the cast with a
// descriptive error rather than serve byte-swapped values.
func HostLittleEndian() bool {
	x := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}

// Float64s reinterprets b as a []float64 without copying. It errors unless
// b's length is a multiple of 8 and its base address is 8-byte aligned —
// the alignment contract segment files guarantee by starting data on a
// 64-byte boundary (mmap bases are page-aligned; heap buffers are at least
// 8-byte aligned).
func Float64s(b []byte) ([]float64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mmapfile: byte length %d is not a multiple of 8", len(b))
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, fmt.Errorf("mmapfile: base address %p is not 8-byte aligned", p)
	}
	return unsafe.Slice((*float64)(p), len(b)/8), nil
}
