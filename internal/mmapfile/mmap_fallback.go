//go:build !unix || nommap

package mmapfile

import (
	"io"
	"os"
)

// openMapping is the portable fallback: the whole file is read into one
// heap buffer at open. Bytes and alignment behave identically to the
// mapped path; what is lost is lazy residency — the buffer is resident for
// the mapping's lifetime, so tables larger than RAM need a platform with
// real mmap.
func openMapping(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func closeMapping(data []byte, mapped bool) error { return nil }
