//go:build !linux

package mmapfile

import "os"

// dropPageCache is a no-op where posix_fadvise is unavailable; cold-read
// benchmarks on such platforms measure warm reads and say so.
func dropPageCache(f *os.File) error { return nil }

// adviseRandom is a no-op where madvise is unavailable; residency is then
// at the mercy of the platform's default readahead.
func adviseRandom(data []byte) error { return nil }
