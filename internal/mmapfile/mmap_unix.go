//go:build unix && !nommap

package mmapfile

import (
	"os"
	"syscall"
)

// openMapping maps size bytes of f read-only and shared: the kernel's page
// cache backs the mapping directly, so repeated opens of one segment share
// physical pages and residency tracks exactly the pages draws touch.
func openMapping(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func closeMapping(data []byte, mapped bool) error {
	if !mapped {
		return nil
	}
	return syscall.Munmap(data)
}
