package rapidviz_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// segTestTable builds a table with extras and modestly separated means —
// enough draws to exercise batching, WOR exhaustion on the small groups,
// and Where filtering.
func segTestTable(t testing.TB) *rapidviz.Table {
	t.Helper()
	b := rapidviz.NewTableBuilderColumns("delay", "elapsed")
	rng := xrand.New(404)
	for gi, name := range []string{"AA", "UA", "DL", "WN", "B6"} {
		n := 400 + 300*gi
		for i := 0; i < n; i++ {
			v := float64(3*gi) + 30*rng.Float64()
			if err := b.AddRow(name, v, 60+240*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// assertIdenticalResults compares two results bit for bit.
func assertIdenticalResults(t *testing.T, inmem, seg *rapidviz.Result) {
	t.Helper()
	if len(inmem.Estimates) != len(seg.Estimates) {
		t.Fatalf("estimate lengths differ: %d vs %d", len(inmem.Estimates), len(seg.Estimates))
	}
	for i := range inmem.Estimates {
		if math.Float64bits(inmem.Estimates[i]) != math.Float64bits(seg.Estimates[i]) {
			t.Fatalf("estimate %d diverged: %v (in-memory) vs %v (segments)", i, inmem.Estimates[i], seg.Estimates[i])
		}
	}
	for i := range inmem.SampleCounts {
		if inmem.SampleCounts[i] != seg.SampleCounts[i] {
			t.Fatalf("sample count %d diverged: %d vs %d", i, inmem.SampleCounts[i], seg.SampleCounts[i])
		}
	}
	if inmem.TotalSamples != seg.TotalSamples {
		t.Fatalf("total samples diverged: %d vs %d", inmem.TotalSamples, seg.TotalSamples)
	}
}

// segFormats are the two on-disk formats every restart-contract test runs
// against: raw v1 columns and block-compressed v2 columns with a block
// length small enough that the test groups span many blocks.
var segFormats = []struct {
	name string
	opts rapidviz.SegmentOptions
}{
	{"raw", rapidviz.SegmentOptions{}},
	{"compressed", rapidviz.SegmentOptions{Compress: true, BlockLen: 512}},
}

// TestSegmentRestartDeterminism is the restart contract: ingest, write
// segments (raw and compressed), reopen from disk in a fresh table, and
// every algorithm at every batch cadence must reproduce the in-memory run
// bit for bit for the same Query and Seed.
func TestSegmentRestartDeterminism(t *testing.T) {
	for _, format := range segFormats {
		t.Run(format.name, func(t *testing.T) {
			testSegmentRestartDeterminism(t, format.opts)
		})
	}
}

func testSegmentRestartDeterminism(t *testing.T, opts rapidviz.SegmentOptions) {
	tbl := segTestTable(t)
	dir := t.TempDir()
	if err := tbl.WriteSegmentsOptions(dir, opts); err != nil {
		t.Fatal(err)
	}

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, algo := range []struct {
		name string
		a    rapidviz.Algorithm
	}{
		{"ifocus", rapidviz.AlgoIFocus},
		{"irefine", rapidviz.AlgoIRefine},
		{"roundrobin", rapidviz.AlgoRoundRobin},
		{"scan", rapidviz.AlgoScan},
		{"noindex", rapidviz.AlgoNoIndex},
	} {
		for _, batch := range []int{1, 64, 0} {
			t.Run(fmt.Sprintf("%s/batch=%d", algo.name, batch), func(t *testing.T) {
				q := rapidviz.Query{
					Algorithm: algo.a,
					Bound:     tbl.MaxValue(),
					Seed:      77,
					BatchSize: batch,
					MaxDraws:  500_000,
				}
				inmem, err := eng.Run(ctx, q, tbl.View())
				if err != nil {
					t.Fatal(err)
				}
				// A fresh open per run is the restart being tested.
				st, err := rapidviz.OpenSegments(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				seg, err := eng.Run(ctx, q, st.View())
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalResults(t, inmem, seg)
			})
		}
	}
}

// TestSegmentWhereDeterminism: predicate-filtered queries plan views over
// the on-disk columns (value and extras; zone-map pushdown on the
// compressed format) and must match the in-memory filtered runs bit for
// bit.
func TestSegmentWhereDeterminism(t *testing.T) {
	for _, format := range segFormats {
		t.Run(format.name, func(t *testing.T) {
			testSegmentWhereDeterminism(t, format.opts)
		})
	}
}

func testSegmentWhereDeterminism(t *testing.T, opts rapidviz.SegmentOptions) {
	tbl := segTestTable(t)
	dir := t.TempDir()
	if err := tbl.WriteSegmentsOptions(dir, opts); err != nil {
		t.Fatal(err)
	}
	st, err := rapidviz.OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	wheres := [][]rapidviz.Predicate{
		{rapidviz.Where("elapsed", rapidviz.OpGE, 150)},
		{rapidviz.Where("delay", rapidviz.OpLT, 20), rapidviz.Where("elapsed", rapidviz.OpLT, 280)},
		{rapidviz.WhereGroups("AA", "DL", "B6")},
	}
	for wi, preds := range wheres {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("where%d/batch=%d", wi, batch), func(t *testing.T) {
				q := rapidviz.Query{
					Bound:     tbl.MaxValue(),
					Seed:      13,
					BatchSize: batch,
					Where:     preds,
				}
				inmem, err := eng.Run(ctx, q, tbl.View())
				if err != nil {
					t.Fatal(err)
				}
				seg, err := eng.Run(ctx, q, st.View())
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalResults(t, inmem, seg)
			})
		}
	}
}

// TestSegmentWORExhaustion drains segment groups past their population
// (falling back to with-replacement mid-block, like the in-memory path)
// and requires the identical stream. Tiny groups force exhaustion for
// every batch cadence.
func TestSegmentWORExhaustion(t *testing.T) {
	for _, format := range segFormats {
		t.Run(format.name, func(t *testing.T) {
			opts := format.opts
			if opts.Compress {
				opts.BlockLen = 16 // 50-row groups still cross blocks
			}
			testSegmentWORExhaustion(t, opts)
		})
	}
}

func testSegmentWORExhaustion(t *testing.T, opts rapidviz.SegmentOptions) {
	b := rapidviz.NewTableBuilder()
	rng := xrand.New(9)
	for _, name := range []string{"X", "Y", "Z"} {
		for i := 0; i < 50; i++ {
			b.Add(name, 50+10*rng.Float64())
		}
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := tbl.WriteSegmentsOptions(dir, opts); err != nil {
		t.Fatal(err)
	}
	st, err := rapidviz.OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Overlapping means keep every group contentious long past its 50
	// rows; cap the rounds via MaxDraws so the run terminates quickly.
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 64} {
		q := rapidviz.Query{
			Bound:     tbl.MaxValue(),
			Seed:      5,
			BatchSize: batch,
			MaxRounds: 300,
		}
		inmem, err := eng.Run(context.Background(), q, tbl.View())
		if err != nil {
			t.Fatal(err)
		}
		seg, err := eng.Run(context.Background(), q, st.View())
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, inmem, seg)
		// The driver clamps without-replacement blocks to the remaining
		// population, so a contentious group drains to exactly its size —
		// proving the segment path exhausts its permutation at the same
		// draw the in-memory path does. (The mid-block with-replacement
		// fallback past the population is exercised at the sampler level
		// by the dataset package's segment tests.)
		for i, c := range seg.SampleCounts {
			if c != 50 {
				t.Fatalf("batch=%d group %d drew %d samples; want exactly the 50-row population", batch, i, c)
			}
		}
	}
}

// vmRSSKB reads the process resident set from /proc (linux only).
func vmRSSKB(t *testing.T) int64 {
	t.Helper()
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if f, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSpace(strings.TrimSuffix(f, "kB")), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			return kb
		}
	}
	t.Fatal("no VmRSS in /proc/self/status")
	return 0
}

// TestSegmentBoundedResidency is the out-of-core promise in miniature: a
// 128 MB table (2 groups x 8M rows, written by the streaming writer, so
// the test itself never holds the rows) is opened and sampled ~1000 draws
// per group. Sampling must not fault the table in: the Go heap may not
// grow with table size (sparse permutations replace the dense 64 MB one)
// and the process RSS may grow only by the touched pages — megabytes,
// not the 128 MB a full materialization would add.
func TestSegmentBoundedResidency(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("reads /proc/self/status")
	}
	if testing.Short() {
		t.Skip("writes a 128 MB segment table")
	}
	const rows = 8_000_000
	dir := t.TempDir()
	sw, err := dataset.CreateSegments(dir, "value")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4242)
	for _, name := range []string{"G0", "G1"} {
		if err := sw.StartGroup(name); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := sw.Append(100 * rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := dataset.OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Mapped() {
		// Start from a cold mapping so RSS growth measures what sampling
		// faults in, not what writing left in the page cache — and disable
		// readahead, else each fault drags in a cluster of pages and the
		// measurement reflects kernel prefetch policy, not the draws.
		if err := st.DropPageCache(); err != nil {
			t.Logf("drop page cache: %v (continuing)", err)
		}
		if err := st.AdviseRandom(); err != nil {
			t.Logf("advise random: %v (continuing)", err)
		}
	}

	u, err := st.Universe(0)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	rssBefore := vmRSSKB(t)

	s := dataset.NewStreamSampler(u, 99, true)
	buf := make([]float64, 64)
	for gi := 0; gi < u.K(); gi++ {
		for r := 0; r < 16; r++ { // 16 x 64 = 1024 draws per group
			s.DrawBatch(gi, buf)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	rssAfter := vmRSSKB(t)

	heapGrowth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if heapGrowth > 8<<20 {
		t.Fatalf("heap grew %d bytes sampling a mapped table; want < 8 MB (dense state would be ~64 MB)", heapGrowth)
	}
	rssGrowthKB := rssAfter - rssBefore
	if rssGrowthKB > 48<<10 {
		t.Fatalf("RSS grew %d kB sampling ~2k rows; want < 48 MB (the table is 128 MB)", rssGrowthKB)
	}
	t.Logf("heap growth %d bytes, RSS growth %d kB over a %d-row mapped table", heapGrowth, rssGrowthKB, 2*rows)
}
