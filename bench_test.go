// Benchmarks regenerating every table and figure of the paper's evaluation
// at laptop scale, plus micro-benchmarks of the substrate's hot paths.
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigNN/BenchmarkTableN runs the same code path as
// `cmd/experiments -fig <id>` at a reduced Scale; EXPERIMENTS.md records
// the paper-vs-measured comparison produced by the full runs.
package rapidviz_test

import (
	"io"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// benchScale keeps each harness iteration around a second.
func benchScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.Reps = 2
	s.Sizes = []int64{500_000, 1_000_000}
	s.BaseRows = 500_000
	s.MaxRounds = 1 << 21
	return s
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

func BenchmarkFig3a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		res.PrintScatter(io.Discard)
	}
}

func BenchmarkFig3c(b *testing.B) {
	s := benchScale()
	s.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3c(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5c6aConvergence(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Convergence(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	s := benchScale()
	s.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6c(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6c(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	s := benchScale()
	s.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7a(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	s := benchScale()
	s.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7b(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7c(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7c(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchScale()
	s.Sizes = []int64{200_000}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkIFocusRun(b *testing.B) {
	u, err := workload.Virtual(workload.Config{Kind: workload.MixtureKind, K: 10, TotalRows: 10_000_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.MaxRounds = 1 << 21
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IFocus(u, xrand.New(uint64(i)), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundRobinRun(b *testing.B) {
	u, err := workload.Virtual(workload.Config{Kind: workload.MixtureKind, K: 10, TotalRows: 10_000_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.MaxRounds = 1 << 21
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RoundRobin(u, xrand.New(uint64(i)), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitmapSelect(b *testing.B) {
	bm := bitmap.New(1 << 20)
	r := xrand.New(2)
	for i := 0; i < 1<<20; i++ {
		if r.Float64() < 0.1 {
			bm.Set(i)
		}
	}
	count := bm.Count()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Select(r.Intn(count)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSample(b *testing.B) {
	schema := needletail.Schema{GroupColumn: "g", ValueColumns: []string{"v"}}
	device := disksim.MustNew(disksim.DefaultCostModel())
	tb := needletail.NewTableBuilder(schema, device)
	r := xrand.New(3)
	for i := 0; i < 200_000; i++ {
		if err := tb.Append([]string{"a", "b", "c"}[r.Intn(3)], r.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
	table, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.SampleRow(i%3, 0, r)
	}
}

func BenchmarkRLECompress(b *testing.B) {
	bm := bitmap.New(1 << 20)
	for i := 100_000; i < 400_000; i++ {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitmap.Compress(bm)
	}
}

func BenchmarkEpsilonSchedule(b *testing.B) {
	sched := conc.MustSchedule(100, 10, 0.05, 1, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Epsilon(i%1_000_000 + 2)
	}
}

func BenchmarkAblationKappa(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationKappa(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReplacement(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReplacement(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBlockCache(b *testing.B) {
	s := benchScale()
	s.Reps = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBlockCache(s); err != nil {
			b.Fatal(err)
		}
	}
}
