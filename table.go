package rapidviz

import (
	"io"
	"os"

	"repro/internal/dataset"
)

// Row is one raw record of a GROUP BY ingestion: a group label and the
// value the query aggregates.
type Row = dataset.Row

// Table is a columnar (group, value) store produced by ingestion. Every
// group's values are packed contiguously, so the engine's batched sampling
// runs over dense memory; Groups() returns the zero-copy sampling groups
// ready to pass to Engine.Run or Engine.Stream. One table can serve any
// number of concurrent queries: give each query its own View() — views
// share the packed storage but carry independent draw state.
type Table = dataset.Table

// TableView is a predicate-filtered view of a Table, produced by
// Table.Filter: the surviving groups restricted to their selected rows,
// sharing the table's packed columns. Engine queries normally filter via
// Query.Where (which plans and caches views internally); use Filter
// directly when you want to inspect a selection — its cardinalities,
// value bound, surviving groups — or reuse one across engines.
type TableView = dataset.View

// TableBuilder accumulates raw rows incrementally (streaming ingestion)
// and groups them into a Table on Build. Construct with NewTableBuilder,
// or NewTableBuilderColumns for rows that carry extra filterable columns.
type TableBuilder = dataset.TableBuilder

// NewTableBuilder returns an empty streaming ingestion builder.
func NewTableBuilder() *TableBuilder { return dataset.NewTableBuilder() }

// NewTableBuilderColumns returns a streaming ingestion builder whose rows
// carry a named aggregated value column plus one numeric extra column per
// extraName. Extra columns are never aggregated; they exist for
// Query.Where predicates (Where("dist", OpGE, 500)). Add rows with
// TableBuilder.AddRow, whose extras match extraNames positionally.
func NewTableBuilderColumns(valueName string, extraNames ...string) *TableBuilder {
	return dataset.NewTableBuilderColumns(valueName, extraNames...)
}

// NewTableUniverse ingests raw (group, value) rows into a columnar table,
// grouping them by label in first-seen order. It is the one-call path from
// a real workload — query results, log records — to a universe of sampling
// groups:
//
//	table, err := rapidviz.NewTableUniverse(rows)
//	// handle err ...
//	q := rapidviz.Query{BatchSize: 64, Bound: table.MaxValue()}
//	res, err := engine.Run(ctx, q, table.Groups())
//
// Pass Bound: table.MaxValue() — the builder tracked the value range
// during ingestion, so a query with no Bound would rescan every column to
// re-infer it on each run.
//
// Values must be non-negative (every algorithm requires values in [0, c]);
// shift or clamp before ingesting otherwise.
func NewTableUniverse(rows []Row) (*Table, error) {
	return dataset.BuildTable(rows)
}

// TableFromCSV ingests group,value records from r. The first column is the
// group label and the second the numeric value (extra columns are
// ignored); a header row is skipped automatically when its value column
// does not parse as a number. Large inputs are parsed in parallel shards
// across all CPUs and merged in file order, so the table is byte-identical
// to a sequential read.
func TableFromCSV(r io.Reader) (*Table, error) {
	return dataset.ReadCSV(r)
}

// TableFromCSVFile ingests a CSV file by path, sharding the parse across
// all CPUs like TableFromCSV.
func TableFromCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// SegmentTable is a Table whose columns live in on-disk segment files,
// memory-mapped rather than heap-allocated: rows are paged in by the OS
// only as draws touch them, so tables far larger than RAM stay queryable
// with a resident set proportional to the sampled working set. It embeds
// *Table — every engine path (Run, Stream, Where filters, shared brokers)
// works on it unchanged and produces bit-for-bit the results the
// in-memory table would. Produce segment directories with
// Table.WriteSegments, cmd/datagen -out, or vizsample -write-segments;
// Close unmaps the columns (outstanding draws must be finished first).
type SegmentTable = dataset.SegmentTable

// OpenSegments opens a columnar segment directory written by
// Table.WriteSegments (or the datagen/vizsample writers) as a queryable
// table. Opening is lazy: only the manifest is read and validated — no
// column data is faulted in — so open cost is independent of table size.
// Use SegmentTable.VerifyChecksums to force a full integrity pass. Both
// segment formats open transparently: raw v1 columns serve zero-copy
// mmapped draws, compressed v2 columns (SegmentOptions.Compress) decode
// through a bounded block cache — either way draw streams are bit-for-bit
// identical to the in-memory table's.
func OpenSegments(dir string) (*SegmentTable, error) {
	return dataset.OpenSegments(dir)
}

// SegmentOptions selects the on-disk segment format for
// Table.WriteSegmentsOptions: the zero value writes raw (v1) columns,
// Compress writes block-compressed (v2) columns with per-block zone maps
// that Table.Filter uses to skip blocks no row of which can match.
type SegmentOptions = dataset.SegmentOptions

// TableFromCSVWorkers is TableFromCSV with an explicit parallelism bound.
// Sharded parsing (workers > 1, or 0 for all CPUs) buffers the whole
// input in memory to split it at record boundaries; workers == 1 streams
// through the sequential parser instead, with memory proportional to the
// staged columns only — the right mode for inputs near the machine's
// memory budget. The produced table is byte-identical in every mode.
func TableFromCSVWorkers(r io.Reader, workers int) (*Table, error) {
	return dataset.ReadCSVWorkers(r, workers)
}
