package rapidviz_test

import (
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/xrand"
)

// equalMeanGroups build func-backed groups with identical distributions:
// with-replacement runs over them never terminate on their own, which the
// cancellation and round-cap tests rely on.
func equalMeanGroups(n int) []rapidviz.Group {
	r := xrand.New(40)
	groups := make([]rapidviz.Group, n)
	for i := range groups {
		name := string(rune('a' + i))
		groups[i] = rapidviz.GroupFromFunc(name, 1_000_000, func() float64 { return r.Float64() * 100 })
	}
	return groups
}

// TestRoundRobinCancellation: the ROUNDROBIN path must honor the context
// between rounds just like IFOCUS (previously only the IFOCUS path was
// covered).
func TestRoundRobinCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rapidviz.DefaultEngine().Run(ctx,
		rapidviz.Query{Algorithm: rapidviz.AlgoRoundRobin, Bound: 100}, equalMeanGroups(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", elapsed)
	}
}

// TestRoundRobinMaxRounds: the cap must terminate a never-separating
// ROUNDROBIN run and be reported via Capped.
func TestRoundRobinMaxRounds(t *testing.T) {
	// BatchSize pinned to 1: the assertion counts exactly one draw per
	// group per round, which the auto-batch default would inflate.
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Algorithm: rapidviz.AlgoRoundRobin, Bound: 100, MaxRounds: 100, BatchSize: 1},
		equalMeanGroups(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("capped run not reported")
	}
	if res.Rounds != 100 {
		t.Fatalf("run used %d rounds, want exactly the 100-round cap", res.Rounds)
	}
	if res.TotalSamples != 300 {
		t.Fatalf("total samples %d, want 300 (3 groups × 100 rounds)", res.TotalSamples)
	}
}

// TestNoIndexCancellation: the NOINDEX path polls the context at its check
// cadence.
func TestNoIndexCancellation(t *testing.T) {
	means := []float64{50, 50, 50, 50}
	groups := mkGroups(means, 5_000, 44)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rapidviz.DefaultEngine().Run(ctx,
		rapidviz.Query{Algorithm: rapidviz.AlgoNoIndex, Bound: 100, WithReplacement: true}, groups)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", elapsed)
	}
}

// TestNoIndexMaxDraws: the draw cap terminates a contended NOINDEX run.
func TestNoIndexMaxDraws(t *testing.T) {
	means := []float64{50, 50, 50}
	groups := mkGroups(means, 5_000, 45)
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Algorithm: rapidviz.AlgoNoIndex, Bound: 100, MaxDraws: 500}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("capped run not reported")
	}
	if res.TotalSamples != 500 {
		t.Fatalf("total draws %d, want exactly the 500-draw cap", res.TotalSamples)
	}
}

// TestQueryBatchSizeDefaults: leaving BatchSize unset selects the
// deterministic auto-batch schedule on round algorithms — seed-for-seed
// reproducible and far fewer rounds than the scalar cadence — while
// NOINDEX (whose check cadence scales with the batch, changing results)
// and IREFINE (which ignores batching) keep the unset ≡ 1 identity.
func TestQueryBatchSizeDefaults(t *testing.T) {
	means := []float64{15, 35, 55, 80}
	run := func(t *testing.T, q rapidviz.Query) *rapidviz.Result {
		t.Helper()
		res, err := rapidviz.DefaultEngine().Run(context.Background(), q, mkGroups(means, 20_000, 50))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	same := func(t *testing.T, a, b *rapidviz.Result, what string) {
		t.Helper()
		if a.TotalSamples != b.TotalSamples || a.Rounds != b.Rounds {
			t.Fatalf("%s diverged: %d/%d vs %d/%d samples/rounds",
				what, a.TotalSamples, a.Rounds, b.TotalSamples, b.Rounds)
		}
		for i := range a.Estimates {
			if a.Estimates[i] != b.Estimates[i] {
				t.Fatalf("%s estimate %d differs: %v vs %v", what, i, a.Estimates[i], b.Estimates[i])
			}
		}
	}

	autoQueries := map[string]rapidviz.Query{
		"ifocus":     {Bound: 100, Seed: 51},
		"roundrobin": {Algorithm: rapidviz.AlgoRoundRobin, Bound: 100, Seed: 51},
		"trend":      {Guarantee: rapidviz.GuaranteeTrend, Bound: 100, Seed: 51},
		"sum":        {Aggregate: rapidviz.AggSum, Bound: 100, Seed: 51},
	}
	for name, q := range autoQueries {
		t.Run(name, func(t *testing.T) {
			base := run(t, q)
			again := run(t, q)
			same(t, base, again, "repeat auto run")
			q1 := q
			q1.BatchSize = 1
			scalar := run(t, q1)
			if base.Rounds >= scalar.Rounds {
				t.Fatalf("auto batch used %d rounds vs scalar %d; want fewer", base.Rounds, scalar.Rounds)
			}
			for i := 1; i < len(means); i++ {
				if base.Estimates[i] <= base.Estimates[i-1] {
					t.Fatalf("auto-batch estimates misordered: %v", base.Estimates)
				}
			}
		})
	}

	pinnedQueries := map[string]rapidviz.Query{
		"irefine": {Algorithm: rapidviz.AlgoIRefine, Bound: 100, Seed: 51},
		"noindex": {Algorithm: rapidviz.AlgoNoIndex, Bound: 100, Seed: 51},
	}
	for name, q := range pinnedQueries {
		t.Run(name, func(t *testing.T) {
			base := run(t, q)
			q1 := q
			q1.BatchSize = 1
			same(t, base, run(t, q1), "BatchSize=1")
		})
	}
}

// TestQueryBatchedRun: a batched query returns correctly ordered estimates
// in far fewer rounds.
func TestQueryBatchedRun(t *testing.T) {
	means := []float64{15, 35, 55, 80}
	scalar, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, Seed: 52, BatchSize: 1}, mkGroups(means, 20_000, 50))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, Seed: 52, BatchSize: 64}, mkGroups(means, 20_000, 50))
	if err != nil {
		t.Fatal(err)
	}
	if batched.Rounds > scalar.Rounds/16 {
		t.Fatalf("batched run used %d rounds vs scalar %d; want a large reduction", batched.Rounds, scalar.Rounds)
	}
	for i := 1; i < len(means); i++ {
		if batched.Estimates[i] <= batched.Estimates[i-1] {
			t.Fatalf("batched estimates misordered: %v", batched.Estimates)
		}
	}
}

// TestQueryBatchValidation rejects invalid batching parameters at the
// public boundary.
func TestQueryBatchValidation(t *testing.T) {
	groups := mkGroups([]float64{10, 90}, 1000, 53)
	if _, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, BatchSize: -1}, groups); err == nil {
		t.Fatal("negative BatchSize accepted")
	}
	for _, growth := range []float64{0.3, math.NaN(), math.Inf(1)} {
		if _, err := rapidviz.DefaultEngine().Run(context.Background(),
			rapidviz.Query{Bound: 100, RoundGrowth: growth}, groups); err == nil {
			t.Fatalf("RoundGrowth %v accepted", growth)
		}
	}
}

// TestReusedGroupsAcrossRuns is the engine-level regression for the
// without-replacement reuse bug: two consecutive runs over the *same*
// group values must both behave like first runs (fresh permutations), not
// continue a consumed one.
func TestReusedGroupsAcrossRuns(t *testing.T) {
	groups := mkGroups([]float64{20, 80}, 300, 54)
	eng := rapidviz.DefaultEngine()
	first, err := eng.Run(context.Background(), rapidviz.Query{Bound: 100, Seed: 55}, groups)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), rapidviz.Query{Bound: 100, Seed: 55}, groups)
	if err != nil {
		t.Fatal(err)
	}
	// The tiny groups force the first run deep into each permutation; a
	// leaked permutation would exhaust the second run early and skew its
	// estimates via with-replacement fallback of an almost-empty suffix.
	for i := range second.Estimates {
		if second.Estimates[i] < 0 || second.Estimates[i] > 100 {
			t.Fatalf("second run estimate %d out of range: %v", i, second.Estimates[i])
		}
		if c := second.SampleCounts[i]; c > 300 {
			t.Fatalf("second run drew %d samples from a 300-row group", c)
		}
	}
	if first.TotalSamples == 0 || second.TotalSamples == 0 {
		t.Fatal("degenerate runs")
	}
}

// TestTableIngestionEndToEnd: CSV → Table → Engine.Run, batched.
func TestTableIngestionEndToEnd(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("store,price\n")
	r := xrand.New(60)
	for i := 0; i < 4000; i++ {
		for name, mean := range map[string]float64{"north": 70, "south": 30} {
			sb.WriteString(name)
			sb.WriteByte(',')
			v := mean + (r.Float64()-0.5)*10
			sb.WriteString(strconv.FormatFloat(v, 'f', 3, 64))
			sb.WriteByte('\n')
		}
	}
	table, err := rapidviz.TableFromCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if table.K() != 2 || table.NumRows() != 8000 {
		t.Fatalf("table k=%d rows=%d", table.K(), table.NumRows())
	}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Seed: 61, BatchSize: 64}, table.Groups())
	if err != nil {
		t.Fatal(err)
	}
	if res.Names[0] != "north" && res.Names[0] != "south" {
		t.Fatalf("unexpected group names %v", res.Names)
	}
	north, south := res.Estimates[0], res.Estimates[1]
	if res.Names[0] == "south" {
		north, south = south, north
	}
	if north < south {
		t.Fatalf("ingested query misordered: north=%v south=%v", north, south)
	}
}

// TestNewTableUniverse: raw rows → Table → groups.
func TestNewTableUniverse(t *testing.T) {
	rows := []rapidviz.Row{{Group: "a", Value: 1}, {Group: "b", Value: 9}, {Group: "a", Value: 3}}
	table, err := rapidviz.NewTableUniverse(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rapidviz.DefaultEngine().Run(context.Background(), rapidviz.Query{Seed: 62}, table.Groups())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 2 || res.Estimates[1] != 9 {
		t.Fatalf("tiny table estimates %v, want exact [2 9]", res.Estimates)
	}
	if _, err := rapidviz.NewTableUniverse(nil); err == nil {
		t.Fatal("empty ingestion accepted")
	}
}
