package rapidviz_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/xrand"
)

// TestQueryWorkersInvariance pins the public contract of the parallel
// driver: Query.Workers is purely a throughput knob — estimates, sample
// counts, rounds, and totals are identical for every value, at scalar and
// block batch sizes.
func TestQueryWorkersInvariance(t *testing.T) {
	means := []float64{15, 35, 55, 80}
	queries := map[string]rapidviz.Query{
		"ifocus":     {Bound: 100, Seed: 71},
		"roundrobin": {Algorithm: rapidviz.AlgoRoundRobin, Bound: 100, Seed: 71},
		"trend":      {Guarantee: rapidviz.GuaranteeTrend, Bound: 100, Seed: 71},
		"sum":        {Aggregate: rapidviz.AggSum, Bound: 100, Seed: 71},
		"mistakes":   {Guarantee: rapidviz.GuaranteeMistakes, CorrectPairs: 0.9, Bound: 100, Seed: 71},
	}
	render := func(r *rapidviz.Result) string {
		return fmt.Sprintf("%v|%v|%d|%d", r.Estimates, r.SampleCounts, r.TotalSamples, r.Rounds)
	}
	for name, q := range queries {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, batch), func(t *testing.T) {
				q := q
				q.BatchSize = batch
				q.Workers = 1
				base, err := rapidviz.DefaultEngine().Run(context.Background(), q, mkGroups(means, 20_000, 70))
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{4, 16} {
					q.Workers = workers
					res, err := rapidviz.DefaultEngine().Run(context.Background(), q, mkGroups(means, 20_000, 70))
					if err != nil {
						t.Fatal(err)
					}
					if render(res) != render(base) {
						t.Fatalf("Workers=%d diverged from Workers=1:\n got: %s\nwant: %s", workers, render(res), render(base))
					}
				}
			})
		}
	}
}

// TestQueryWorkersValidation: negative worker counts are rejected at the
// public boundary.
func TestQueryWorkersValidation(t *testing.T) {
	groups := mkGroups([]float64{10, 90}, 1000, 72)
	if _, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, Workers: -1}, groups); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestConcurrentQueriesSharedTable is the serving-shape regression: one
// engine answers many concurrent queries over one ingested table, each
// query sampling its own zero-copy View. Same-seed queries must agree
// exactly no matter how the goroutines interleave, and the table's own
// group set must come through untouched.
func TestConcurrentQueriesSharedTable(t *testing.T) {
	var sb strings.Builder
	r := xrand.New(73)
	for i := 0; i < 30_000; i++ {
		fmt.Fprintf(&sb, "g%d,%v\n", i%5, float64(10*(i%5))+r.Float64()*8)
	}
	table, err := rapidviz.TableFromCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := rapidviz.Query{Bound: table.MaxValue(), Seed: 74, BatchSize: 16}

	const parallel = 8
	results := make([]*rapidviz.Result, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Run(context.Background(), q, table.View())
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if fmt.Sprint(results[i].Estimates) != fmt.Sprint(results[0].Estimates) ||
			results[i].TotalSamples != results[0].TotalSamples {
			t.Fatalf("concurrent same-seed queries disagree: %v vs %v", results[i], results[0])
		}
	}
	// The shared table must still serve a fresh (sequential) run correctly.
	after, err := eng.Run(context.Background(), q, table.Groups())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.Estimates) != fmt.Sprint(results[0].Estimates) {
		t.Fatalf("table's own groups disturbed by concurrent views: %v vs %v", after.Estimates, results[0].Estimates)
	}
}
