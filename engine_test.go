package rapidviz_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/xrand"
)

// TestWrapperQueryEquivalence pins the compatibility contract of the API
// redesign: every deprecated free function must produce seed-for-seed
// identical Estimates, SampleCounts, and TotalSamples to its Query
// equivalent run through Engine.Run. Groups are rebuilt identically for
// each run because materialized groups carry without-replacement sampling
// state.
func TestWrapperQueryEquivalence(t *testing.T) {
	means := []float64{20, 45, 70, 90}
	build := func() []rapidviz.Group { return mkGroups(means, 20_000, 31) }
	opts := rapidviz.Options{Bound: 100, Seed: 32}

	cases := []struct {
		name    string
		wrapper func([]rapidviz.Group) (*rapidviz.Result, error)
		query   rapidviz.Query
	}{
		{"Order", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.Order(g, opts) },
			rapidviz.Query{}},
		{"RoundRobin", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.RoundRobin(g, opts) },
			rapidviz.Query{Algorithm: rapidviz.AlgoRoundRobin}},
		{"Refine", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.Refine(g, opts) },
			rapidviz.Query{Algorithm: rapidviz.AlgoIRefine}},
		{"Exact", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.Exact(g, opts) },
			rapidviz.Query{Algorithm: rapidviz.AlgoScan}},
		{"Trend", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.Trend(g, opts) },
			rapidviz.Query{Guarantee: rapidviz.GuaranteeTrend}},
		{"TopT", func(g []rapidviz.Group) (*rapidviz.Result, error) {
			r, err := rapidviz.TopT(g, 2, opts)
			if err != nil {
				return nil, err
			}
			return &r.Result, nil
		}, rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, T: 2}},
		{"OrderWithValues", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.OrderWithValues(g, 3, opts) },
			rapidviz.Query{Guarantee: rapidviz.GuaranteeValues, MaxError: 3}},
		{"OrderAllowingMistakes", func(g []rapidviz.Group) (*rapidviz.Result, error) {
			return rapidviz.OrderAllowingMistakes(g, 0.8, opts)
		},
			rapidviz.Query{Guarantee: rapidviz.GuaranteeMistakes, CorrectPairs: 0.8}},
		{"Sum", func(g []rapidviz.Group) (*rapidviz.Result, error) { return rapidviz.Sum(g, opts) },
			rapidviz.Query{Aggregate: rapidviz.AggSum}},
	}

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := tc.wrapper(build())
			if err != nil {
				t.Fatal(err)
			}
			q := tc.query
			q.Bound, q.Seed = opts.Bound, opts.Seed
			// The deprecated wrappers promise scalar-cadence identity with
			// the paper-faithful originals, so they pin BatchSize to 1; the
			// Query side must match rather than pick up the auto default.
			q.BatchSize = 1
			modern, err := eng.Run(context.Background(), q, build())
			if err != nil {
				t.Fatal(err)
			}
			if len(legacy.Estimates) != len(modern.Estimates) {
				t.Fatalf("estimate lengths differ: %d vs %d", len(legacy.Estimates), len(modern.Estimates))
			}
			for i := range legacy.Estimates {
				if legacy.Estimates[i] != modern.Estimates[i] {
					t.Fatalf("estimate %d differs: %v vs %v", i, legacy.Estimates[i], modern.Estimates[i])
				}
				if legacy.SampleCounts[i] != modern.SampleCounts[i] {
					t.Fatalf("sample count %d differs: %d vs %d", i, legacy.SampleCounts[i], modern.SampleCounts[i])
				}
			}
			if legacy.TotalSamples != modern.TotalSamples {
				t.Fatalf("total samples differ: %d vs %d", legacy.TotalSamples, modern.TotalSamples)
			}
		})
	}
}

// TestTopTWrapperEquivalence checks the top-t selection itself matches.
func TestTopTWrapperEquivalence(t *testing.T) {
	means := []float64{10, 80, 30, 90, 50}
	opts := rapidviz.Options{Bound: 100, Seed: 13}
	legacy, err := rapidviz.TopT(mkGroups(means, 20_000, 12), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, T: 2, Bound: 100, Seed: 13},
		mkGroups(means, 20_000, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Top) != len(modern.Top) {
		t.Fatalf("top lengths differ: %v vs %v", legacy.Top, modern.Top)
	}
	for i := range legacy.Top {
		if legacy.Top[i] != modern.Top[i] {
			t.Fatalf("top differs: %v vs %v", legacy.Top, modern.Top)
		}
	}
}

// TestRunCancellation pins the context contract: a query over groups whose
// means are exactly equal never terminates on its own (with-replacement
// sampling), so only the deadline can end it — and Run must return
// promptly with the context's error.
func TestRunCancellation(t *testing.T) {
	r := xrand.New(40)
	mk := func(name string) rapidviz.Group {
		return rapidviz.GroupFromFunc(name, 1_000_000, func() float64 { return r.Float64() * 100 })
	}
	groups := []rapidviz.Group{mk("a"), mk("b")}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := rapidviz.DefaultEngine().Run(ctx, rapidviz.Query{Bound: 100}, groups)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", elapsed)
	}
}

// TestStream checks the streaming channel: one partial per group as it
// settles, then exactly one terminal event carrying the result.
func TestStream(t *testing.T) {
	means := []float64{10, 40, 70, 95}
	groups := mkGroups(means, 50_000, 41)
	var partials []rapidviz.Partial
	var final *rapidviz.Result
	terminals := 0
	for ev := range rapidviz.DefaultEngine().Stream(context.Background(), rapidviz.Query{Bound: 100, Seed: 42}, groups) {
		switch {
		case ev.Partial != nil:
			partials = append(partials, *ev.Partial)
		default:
			terminals++
			if ev.Err != nil {
				t.Fatal(ev.Err)
			}
			final = ev.Result
		}
	}
	if terminals != 1 || final == nil {
		t.Fatalf("want exactly one terminal result event, got %d", terminals)
	}
	if len(partials) != len(means) {
		t.Fatalf("want %d partials, got %d", len(means), len(partials))
	}
	for _, p := range partials {
		if p.Estimate != final.Estimates[p.Index] {
			t.Fatalf("partial %q (%v) disagrees with final estimate %v", p.Group, p.Estimate, final.Estimates[p.Index])
		}
	}
}

// TestStreamCancellation: a canceled stream must still terminate and close
// the channel.
func TestStreamCancellation(t *testing.T) {
	r := xrand.New(43)
	groups := []rapidviz.Group{
		rapidviz.GroupFromFunc("a", 1_000_000, func() float64 { return r.Float64() * 100 }),
		rapidviz.GroupFromFunc("b", 1_000_000, func() float64 { return r.Float64() * 100 }),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range rapidviz.DefaultEngine().Stream(ctx, rapidviz.Query{Bound: 100}, groups) {
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after cancellation")
	}
}

// TestQueryValidation pins the public-layer validation errors.
func TestQueryValidation(t *testing.T) {
	groups := mkGroups([]float64{30, 70}, 1000, 44)
	eng := rapidviz.DefaultEngine()
	ctx := context.Background()
	cases := []struct {
		name string
		q    rapidviz.Query
	}{
		{"delta too large", rapidviz.Query{Delta: 2, Bound: 100}},
		{"delta negative", rapidviz.Query{Delta: -0.1, Bound: 100}},
		{"bad correct pairs", rapidviz.Query{Guarantee: rapidviz.GuaranteeMistakes, CorrectPairs: 1.5, Bound: 100}},
		{"zero correct pairs", rapidviz.Query{Guarantee: rapidviz.GuaranteeMistakes, Bound: 100}},
		{"topt without T", rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, Bound: 100}},
		{"topt T too large", rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, T: 3, Bound: 100}},
		{"values without MaxError", rapidviz.Query{Guarantee: rapidviz.GuaranteeValues, Bound: 100}},
		{"negative resolution", rapidviz.Query{Resolution: -1, Bound: 100}},
		{"adjacency size mismatch", rapidviz.Query{Guarantee: rapidviz.GuaranteeAdjacency, Adjacency: [][]int{{1}}, Bound: 100}},
		{"cells without cell groups", rapidviz.Query{SubGroups: 2, Bound: 100}},
		{"pair agg without pair groups", rapidviz.Query{Aggregate: rapidviz.AggAvgPair, Bound: 100}},
		{"non-avg aggregate with trend", rapidviz.Query{Aggregate: rapidviz.AggSum, Guarantee: rapidviz.GuaranteeTrend, Bound: 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := eng.Run(ctx, tc.q, groups); err == nil {
				t.Fatalf("query %+v accepted", tc.q)
			}
		})
	}
	if _, err := eng.Run(ctx, rapidviz.Query{Bound: 100}, nil); err == nil {
		t.Fatal("empty group list accepted")
	}
}

// TestDeterministicSeedZero pins the Seed==0 sentinel fix: a Deterministic
// query with seed 0 is honored (reproducible, and distinct from the
// default-seeded stream) instead of being silently replaced.
func TestDeterministicSeedZero(t *testing.T) {
	means := []float64{30, 70}
	build := func() []rapidviz.Group { return mkGroups(means, 10_000, 45) }
	eng := rapidviz.DefaultEngine()
	ctx := context.Background()

	a, err := eng.Run(ctx, rapidviz.Query{Bound: 100, Deterministic: true}, build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(ctx, rapidviz.Query{Bound: 100, Deterministic: true}, build())
	if err != nil {
		t.Fatal(err)
	}
	def, err := eng.Run(ctx, rapidviz.Query{Bound: 100}, build())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatal("deterministic seed-0 runs disagree")
		}
	}
	same := a.TotalSamples == def.TotalSamples
	for i := range a.Estimates {
		if a.Estimates[i] != def.Estimates[i] {
			same = false
		}
	}
	if same {
		t.Fatal("explicit seed 0 produced the default-seed stream; sentinel still in effect")
	}
}

// TestCountQuery: with known sizes COUNT is exact and free.
func TestCountQuery(t *testing.T) {
	groups := []rapidviz.Group{
		rapidviz.GroupFromValues("x", make([]float64, 300)),
		rapidviz.GroupFromValues("y", make([]float64, 100)),
	}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Aggregate: rapidviz.AggCount, Bound: 1}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 300 || res.Estimates[1] != 100 {
		t.Fatalf("counts %v", res.Estimates)
	}
	if res.TotalSamples != 0 {
		t.Fatalf("exact counts should take no samples, took %d", res.TotalSamples)
	}
}

// TestNormalizedCountQuery: fractional sizes estimated by membership
// sampling order like the true sizes.
func TestNormalizedCountQuery(t *testing.T) {
	groups := []rapidviz.Group{
		rapidviz.GroupFromValues("big", make([]float64, 60_000)),
		rapidviz.GroupFromValues("small", make([]float64, 20_000)),
	}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Aggregate: rapidviz.AggNormalizedCount, Bound: 1, Seed: 46}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] > res.Estimates[1]) {
		t.Fatalf("fractional sizes out of order: %v", res.Estimates)
	}
	if math.Abs(res.Estimates[0]-0.75) > 0.15 || math.Abs(res.Estimates[1]-0.25) > 0.15 {
		t.Fatalf("fractional sizes off: %v", res.Estimates)
	}
}

// TestNormalizedSumQuery: normalized sums s_i·µ_i order correctly without
// consuming group sizes.
func TestNormalizedSumQuery(t *testing.T) {
	r := xrand.New(47)
	mk := func(name string, n int, mean float64) rapidviz.Group {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = mean + r.Float64()*4 - 2
		}
		return rapidviz.GroupFromValues(name, vals)
	}
	groups := []rapidviz.Group{mk("heavy", 10_000, 80), mk("light", 10_000, 20)}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Aggregate: rapidviz.AggNormalizedSum, Bound: 100, Seed: 48}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] > res.Estimates[1]) {
		t.Fatalf("normalized sums out of order: %v", res.Estimates)
	}
}

// TestNoIndexQuery: the whole-table-sampling algorithm is selectable and
// orders well-separated groups correctly.
func TestNoIndexQuery(t *testing.T) {
	groups := mkGroups([]float64{20, 80}, 30_000, 49)
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Algorithm: rapidviz.AlgoNoIndex, Bound: 100, Seed: 50}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] < res.Estimates[1]) {
		t.Fatalf("no-index ordering wrong: %v", res.Estimates)
	}
	if res.TotalSamples == 0 {
		t.Fatal("no samples drawn")
	}
	if res.Rounds == 0 {
		t.Fatal("no-index run reported zero rounds")
	}
}

// TestAvgPairQuery: both aggregates of a pair query come back ordered.
func TestAvgPairQuery(t *testing.T) {
	r := xrand.New(51)
	mk := func(name string, muY, muZ float64) rapidviz.Group {
		ys := make([]float64, 20_000)
		zs := make([]float64, 20_000)
		for i := range ys {
			ys[i] = muY + r.Float64()*10 - 5
			zs[i] = muZ + r.Float64()*10 - 5
		}
		return rapidviz.GroupFromPairs(name, ys, zs)
	}
	groups := []rapidviz.Group{mk("a", 30, 70), mk("b", 70, 30)}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Aggregate: rapidviz.AggAvgPair, Bound: 100, Seed: 52}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] < res.Estimates[1]) {
		t.Fatalf("Y ordering wrong: %v", res.Estimates)
	}
	if len(res.SecondEstimates) != 2 || !(res.SecondEstimates[0] > res.SecondEstimates[1]) {
		t.Fatalf("Z ordering wrong: %v", res.SecondEstimates)
	}
}

// TestCellQuery: the multiple-group-by setting estimates every (group,
// key) cell in the right relative order.
func TestCellQuery(t *testing.T) {
	r := xrand.New(53)
	cell := func(mu float64) []float64 {
		vals := make([]float64, 10_000)
		for i := range vals {
			vals[i] = mu + r.Float64()*6 - 3
		}
		return vals
	}
	truth := [][]float64{{10, 40}, {70, 95}}
	groups := []rapidviz.Group{
		rapidviz.GroupFromCells("x0", [][]float64{cell(truth[0][0]), cell(truth[0][1])}),
		rapidviz.GroupFromCells("x1", [][]float64{cell(truth[1][0]), cell(truth[1][1])}),
	}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{SubGroups: 2, Bound: 100, Seed: 54, MaxDraws: 5_000_000}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CellEstimates) != 2 || len(res.CellEstimates[0]) != 2 {
		t.Fatalf("cell shape %v", res.CellEstimates)
	}
	for x := 0; x < 2; x++ {
		for z := 0; z < 2; z++ {
			if math.Abs(res.CellEstimates[x][z]-truth[x][z]) > 15 {
				t.Fatalf("cell (%d,%d) estimate %v far from %v", x, z, res.CellEstimates[x][z], truth[x][z])
			}
		}
	}
	bars := res.Bars()
	if len(bars) != 4 {
		t.Fatalf("want one bar per cell, got %d", len(bars))
	}
	if bars[0].Label != "x0/0" || bars[3].Label != "x1/1" {
		t.Fatalf("cell bar labels wrong: %q %q", bars[0].Label, bars[3].Label)
	}
	if bars[2].Value != res.CellEstimates[1][0] {
		t.Fatalf("cell bar values misaligned: %v", bars)
	}
}

// TestAdjacencyQuery: the chloropleth guarantee is reachable with a custom
// neighbour graph.
func TestAdjacencyQuery(t *testing.T) {
	means := []float64{20, 40, 60, 80}
	groups := mkGroups(means, 50_000, 55)
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	res, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Guarantee: rapidviz.GuaranteeAdjacency, Adjacency: adj, Bound: 100, Seed: 56}, groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(means); i++ {
		if !(res.Estimates[i] < res.Estimates[i+1]) {
			t.Fatalf("adjacent pair %d out of order: %v", i, res.Estimates)
		}
	}
}

// TestConcurrentRuns exercises the bounded worker pool: many concurrent
// queries on a small engine must all complete and agree (each goroutine
// samples its own freshly built groups).
func TestConcurrentRuns(t *testing.T) {
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{25, 75}
	const parallel = 8
	totals := make([]int64, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Run(context.Background(), rapidviz.Query{Bound: 100, Seed: 57}, mkGroups(means, 10_000, 58))
			if err != nil {
				errs[i] = err
				return
			}
			totals[i] = res.TotalSamples
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if totals[i] != totals[0] {
			t.Fatalf("concurrent runs disagree: %v", totals)
		}
	}
}
