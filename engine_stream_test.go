package rapidviz

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// endlessGroups returns func-backed groups whose estimates can never
// separate (every draw returns the same value), so a query over them runs
// until its context is canceled.
func endlessGroups(k int) []Group {
	groups := make([]Group, k)
	for i := range groups {
		groups[i] = GroupFromFunc(fmt.Sprintf("g%d", i), 1_000_000, func() float64 { return 50 })
	}
	return groups
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing with a stack dump if it does not within the deadline.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: have %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCancelNoGoroutineLeak pins Engine.Stream's abandonment
// contract: canceling the context mid-stream must close every channel
// promptly and release all query goroutines and worker slots — both for
// consumers that keep draining and for consumers that abandoned the
// channel without reading a single event.
func TestStreamCancelNoGoroutineLeak(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	const streams = 8 // twice the pool: half run, half wait in admission
	ctx, cancel := context.WithCancel(context.Background())
	chans := make([]<-chan Event, streams)
	for i := range chans {
		// Odd streams are abandoned outright: nobody ever reads them.
		chans[i] = eng.Stream(ctx, Query{Bound: 100}, endlessGroups(3))
	}
	// Let the admitted queries reach their sampling loops.
	time.Sleep(50 * time.Millisecond)
	cancel()

	for i, ch := range chans {
		if i%2 == 1 {
			continue // abandoned: the buffered channel absorbs the terminal
		}
		var terminal *Event
		for ev := range ch {
			ev := ev
			terminal = &ev
		}
		if terminal == nil {
			t.Fatalf("stream %d closed without a terminal event", i)
		}
		if !errors.Is(terminal.Err, context.Canceled) {
			t.Fatalf("stream %d terminal error = %v, want context.Canceled", i, terminal.Err)
		}
	}

	// Every query goroutine — including those serving abandoned channels —
	// must exit once the context is gone.
	waitGoroutines(t, baseline)
	if got := eng.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after cancellation, want 0", got)
	}
}

// TestViewCacheStats pins the hit/miss/eviction counters on the
// predicate-view cache: the first Where query with a given fingerprint is
// a miss, repeats are hits, and overflowing the cache evicts (flushes) the
// stored entries.
func TestViewCacheStats(t *testing.T) {
	table := whereTestTable(t, 200)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(preds ...Predicate) {
		t.Helper()
		q := Query{Algorithm: AlgoScan, Bound: table.MaxValue(), Where: preds}
		if _, err := eng.Run(ctx, q, table.View()); err != nil {
			t.Fatal(err)
		}
	}

	run(Where("qty", OpGE, 5))
	if s := eng.ViewCacheStats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after first filtered query: %+v, want 0 hits / 1 miss / 1 entry", s)
	}
	// Same predicate, written in a different conjunct order: one
	// fingerprint, so a hit.
	run(Where("qty", OpGE, 5))
	run(WhereValue(OpGE, 0), Where("qty", OpGE, 5))
	run(Where("qty", OpGE, 5), WhereValue(OpGE, 0))
	s := eng.ViewCacheStats()
	if s.Hits != 2 || s.Misses != 2 || s.Evictions != 0 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 0 evictions / 2 entries", s)
	}

	// Overflow the 64-entry bound: the store path flushes everything, and
	// the flush is accounted as evictions.
	for i := 0; i < maxCachedViews+1; i++ {
		run(Where("qty", OpGE, float64(i)/1000))
	}
	s = eng.ViewCacheStats()
	if s.Evictions != maxCachedViews {
		t.Fatalf("evictions = %d after overflow, want %d", s.Evictions, maxCachedViews)
	}
	if s.Entries < 1 || s.Entries > maxCachedViews {
		t.Fatalf("entries = %d after flush, want within (0, %d]", s.Entries, maxCachedViews)
	}
}

// TestAdmissionHookAndInFlight pins the serving observability surface: the
// OnAdmission hook fires once per admitted query with its slot wait, a
// query that queues behind a full pool reports a positive wait, and
// InFlight tracks slot occupancy back down to zero.
func TestAdmissionHookAndInFlight(t *testing.T) {
	var mu sync.Mutex
	var waits []time.Duration
	eng, err := NewEngine(EngineConfig{
		Workers: 1,
		OnAdmission: func(w time.Duration) {
			mu.Lock()
			waits = append(waits, w)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Capacity() != 1 {
		t.Fatalf("Capacity() = %d, want 1", eng.Capacity())
	}

	ctx, cancel := context.WithCancel(context.Background())
	first := eng.Stream(ctx, Query{Bound: 100}, endlessGroups(2))
	deadline := time.Now().Add(5 * time.Second)
	for eng.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		groups := []Group{GroupFromValues("a", []float64{1, 2, 3})}
		_, err := eng.Run(context.Background(), Query{Algorithm: AlgoScan, Bound: 10}, groups)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the second query queue
	cancel()                          // frees the slot
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for range first {
	}

	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("OnAdmission fired %d times, want 2", len(waits))
	}
	if waits[1] <= 0 {
		t.Fatalf("queued query reported wait %v, want > 0", waits[1])
	}
	if got := eng.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after both queries, want 0", got)
	}
}

// TestQueryFingerprint pins the canonicalization contract behind the
// whole-query result cache: engine defaults resolve before encoding,
// result-neutral knobs are excluded, and every result-bearing knob changes
// the fingerprint.
func TestQueryFingerprint(t *testing.T) {
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	base := eng.Fingerprint(Query{})

	same := []Query{
		{Delta: 0.05},                  // explicit engine default
		{ConfidenceBound: "hoeffding"}, // explicit default bound
		{Workers: 8},                   // worker invariance: excluded
		{Workers: 1},
		{Seed: 0x5eedf00d}, // the engine's default seed, spelled out
		{OnRound: func(RoundTrace) {}},
	}
	for i, q := range same {
		if got := eng.Fingerprint(q); got != base {
			t.Fatalf("same[%d]: fingerprint diverged\n got %s\nwant %s", i, got, base)
		}
	}

	diff := []Query{
		{Delta: 0.01},
		{Seed: 7},
		{Deterministic: true}, // resolved seed 0, not the default seed
		{BatchSize: 64},
		{RoundGrowth: 1.5},
		{MaxRounds: 10},
		{MaxDraws: 1000},
		{Bound: 100},
		{Resolution: 0.5},
		{WithReplacement: true},
		{ConfidenceBound: "bernstein"},
		{Algorithm: AlgoRoundRobin},
		{Aggregate: AggSum},
		{Guarantee: GuaranteeTrend},
		{Guarantee: GuaranteeTopT, T: 2},
		{Where: []Predicate{Where("qty", OpGE, 5)}},
	}
	seen := map[string]int{base: -1}
	for i, q := range diff {
		fp := eng.Fingerprint(q)
		if j, dup := seen[fp]; dup {
			t.Fatalf("diff[%d] collides with case %d: %s", i, j, fp)
		}
		seen[fp] = i
	}

	// Where conjunct order is canonicalized away.
	a := eng.Fingerprint(Query{Where: []Predicate{Where("qty", OpGE, 5), WhereValue(OpLT, 9)}})
	b := eng.Fingerprint(Query{Where: []Predicate{WhereValue(OpLT, 9), Where("qty", OpGE, 5)}})
	if a != b {
		t.Fatalf("predicate order changed the fingerprint:\n%s\n%s", a, b)
	}

	// An engine with different defaults fingerprints the zero query
	// differently — the defaults are part of the resolved query.
	eng2, err := NewEngine(EngineConfig{Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Fingerprint(Query{}) == base {
		t.Fatal("engine defaults did not resolve into the fingerprint")
	}
}
